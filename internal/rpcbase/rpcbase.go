// Package rpcbase implements the two communication baselines the paper
// positions promises against (Liskov & Shrira, PLDI 1988, §1, §5):
//
//   - Plain remote procedure calls: Client.Call transmits the request
//     immediately and blocks the caller until the reply arrives. Programs
//     are easy to reason about, but "remote calls require the caller to
//     wait for a reply before continuing," so throughput is limited to
//     one call per round trip and nothing is batched.
//
//   - Explicit send/receive (Plits, *MOD): Client.SendAsync fires a
//     request and returns; Client.RecvReply delivers the next reply —
//     whichever call it answers. High throughput is possible because many
//     calls are in progress at once, but "it is entirely the
//     responsibility of the user code to relate reply messages with the
//     calls that caused them." The Matcher helper does that bookkeeping
//     and counts it, so benchmarks can report the burden promises remove.
//
// Both baselines speak the same miniature request/reply protocol over the
// simnet substrate and are served by Server, which executes calls
// concurrently with no ordering guarantees (the point of streams).
package rpcbase

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"promises/internal/clock"
	"promises/internal/exception"
	"promises/internal/metrics"
	"promises/internal/stream"
	"promises/internal/trace"
	"promises/internal/transport"
	"promises/internal/wire"
)

// Config tunes the client's retry behavior.
type Config struct {
	// RTO is how long to wait for a reply before retransmitting. Default
	// 25ms.
	RTO time.Duration
	// MaxRetries is how many retransmissions are attempted before the call
	// terminates with unavailable. Default 8.
	MaxRetries int
}

func (c Config) withDefaults() Config {
	if c.RTO <= 0 {
		c.RTO = 25 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	return c
}

// Handler executes one call's encoded arguments into an outcome.
type Handler func(args []byte) stream.Outcome

const (
	kindRequest = int64(11)
	kindReply   = int64(12)
)

// Server serves RPC requests at a node, running each call in its own
// goroutine — no ordering, no batching. Replies to duplicate requests are
// served from a per-client cache so retransmissions do not re-execute
// calls.
type Server struct {
	node   transport.Endpoint
	clk    clock.Clock
	tracer atomic.Pointer[trace.Tracer]

	mu       sync.Mutex
	handlers map[string]Handler
	seen     map[string]map[uint64][]byte // client -> reqID -> encoded reply
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

// NewServer starts a server on a transport endpoint (a simnet node or
// any other backend).
func NewServer(node transport.Endpoint) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		node:     node,
		clk:      endpointClock(node),
		handlers: make(map[string]Handler),
		seen:     make(map[string]map[uint64][]byte),
		ctx:      ctx,
		cancel:   cancel,
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Handle registers the handler for a port.
func (s *Server) Handle(port string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[port] = h
}

// SetTracer installs a tracer: each executed call is recorded as a
// CallExecuted event carrying the trace ID and causal context the
// client sent (zero from legacy clients), so baseline-RPC segments join
// the same cross-process waterfalls the stream layer produces. If the
// tracer wants a time source (trace.NowSetter) it gets the server's
// clock. Pass nil to detach.
func (s *Server) SetTracer(t trace.Tracer) {
	if t == nil {
		s.tracer.Store(nil)
		return
	}
	if ns, ok := t.(trace.NowSetter); ok {
		ns.SetNow(s.clk.Now)
	}
	s.tracer.Store(&t)
}

// Close stops the server.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

func (s *Server) loop() {
	defer s.wg.Done()
	var wait clock.Timer // reused across crashed-node polls
	defer func() {
		if wait != nil {
			wait.Stop()
		}
	}()
	for {
		msg, err := s.node.Recv(s.ctx)
		if err != nil {
			if errors.Is(err, transport.ErrCrashed) {
				// Volatile dedup state is lost in a crash.
				s.mu.Lock()
				s.seen = make(map[string]map[uint64][]byte)
				s.mu.Unlock()
				if wait == nil {
					wait = s.clk.NewTimer(time.Millisecond)
				} else {
					wait.Reset(time.Millisecond)
				}
				select {
				case <-s.ctx.Done():
					return
				case <-wait.C():
					continue
				}
			}
			return
		}
		s.wg.Add(1)
		go func(msg transport.Message) {
			defer s.wg.Done()
			s.serve(msg)
		}(msg)
	}
}

func (s *Server) serve(msg transport.Message) {
	vals, err := wire.Unmarshal(msg.Payload)
	if err != nil {
		return
	}
	kind, err := wire.IntArg(vals, 0)
	if err != nil || kind != kindRequest {
		return
	}
	id, err := wire.IntArg(vals, 1)
	if err != nil {
		return
	}
	port, err := wire.StringArg(vals, 2)
	if err != nil {
		return
	}
	argsRaw, err := wire.Arg(vals, 3)
	if err != nil {
		return
	}
	args, err := wire.AsBytes(argsRaw)
	if err != nil {
		return
	}
	// Optional trailing trace values (cause-aware clients): the call's
	// trace ID and its propagated (root, parent) context. A legacy server
	// reading positionally never gets here, and a legacy client simply
	// sends 4 values, leaving all three zero.
	var tid, root, parent uint64
	if len(vals) >= 7 {
		if v, err := wire.IntArg(vals, 4); err == nil {
			tid = uint64(v)
		}
		if v, err := wire.IntArg(vals, 5); err == nil {
			root = uint64(v)
		}
		if v, err := wire.IntArg(vals, 6); err == nil {
			parent = uint64(v)
		}
	}

	// Duplicate suppression: replay the cached reply.
	s.mu.Lock()
	if cached, ok := s.seen[msg.From][uint64(id)]; ok {
		s.mu.Unlock()
		_ = s.node.Send(msg.From, cached)
		return
	}
	h, ok := s.handlers[port]
	s.mu.Unlock()

	var outcome stream.Outcome
	if ok {
		outcome = h(args)
	} else {
		outcome = stream.ExceptionOutcome(exception.Failure("handler does not exist"))
	}
	if tp := s.tracer.Load(); tp != nil {
		(*tp).Record(trace.Event{At: s.clk.Now(), Kind: trace.CallExecuted,
			Stream: msg.From + "->" + s.node.Name() + "/rpc", Seq: uint64(id),
			TraceID: tid, Root: root, Parent: parent, Detail: port})
	}
	replyMsg, err := wire.Marshal(kindReply, id, outcome.Normal, outcome.Exception, outcome.Payload)
	if err != nil {
		return
	}
	s.mu.Lock()
	byClient := s.seen[msg.From]
	if byClient == nil {
		byClient = make(map[uint64][]byte)
		s.seen[msg.From] = byClient
	}
	byClient[uint64(id)] = replyMsg
	s.mu.Unlock()
	_ = s.node.Send(msg.From, replyMsg)
}

// clientMetrics bundles the client's metric handles, resolved once from
// the node's network registry. nil disables.
type clientMetrics struct {
	calls       *metrics.Counter // Call invocations
	retries     *metrics.Counter // retransmissions after an RTO expiry
	exhaustions *metrics.Counter // Calls that gave up with unavailable
}

func newClientMetrics(reg *metrics.Registry) *clientMetrics {
	if reg == nil {
		return nil
	}
	return &clientMetrics{
		calls:       reg.Counter("rpc_calls_total"),
		retries:     reg.Counter("rpc_retries_total"),
		exhaustions: reg.Counter("rpc_exhaustions_total"),
	}
}

// Client makes calls from a node, in either the RPC or the send/receive
// style.
type Client struct {
	clk  clock.Clock
	node transport.Endpoint
	cfg  Config
	cm   *clientMetrics
	// traceHash seeds the derived per-call trace IDs cause-carrying
	// requests are stamped with (same scheme as the stream layer).
	traceHash uint64

	nextID uint64

	mu      sync.Mutex
	waiters map[uint64]chan stream.Outcome // Call-style correlation
	rawCh   chan Reply                     // send/receive-style delivery
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// Reply is one reply message as the send/receive style sees it: the user
// gets the request ID and must do the matching.
type Reply struct {
	ID      uint64
	Outcome stream.Outcome
}

// NewClient starts a client on a transport endpoint.
func NewClient(node transport.Endpoint, cfg Config) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		node:      node,
		clk:       endpointClock(node),
		cfg:       cfg.withDefaults(),
		cm:        newClientMetrics(endpointMetrics(node)),
		traceHash: trace.HashStream(node.Name() + "/rpc"),
		waiters:   make(map[uint64]chan stream.Outcome),
		rawCh:     make(chan Reply, 4096),
		ctx:       ctx,
		cancel:    cancel,
	}
	c.wg.Add(1)
	go c.loop()
	return c
}

// Close stops the client.
func (c *Client) Close() {
	c.cancel()
	c.wg.Wait()
}

func (c *Client) loop() {
	defer c.wg.Done()
	var wait clock.Timer // reused across crashed-node polls
	defer func() {
		if wait != nil {
			wait.Stop()
		}
	}()
	for {
		msg, err := c.node.Recv(c.ctx)
		if err != nil {
			if errors.Is(err, transport.ErrCrashed) {
				if wait == nil {
					wait = c.clk.NewTimer(time.Millisecond)
				} else {
					wait.Reset(time.Millisecond)
				}
				select {
				case <-c.ctx.Done():
					return
				case <-wait.C():
					continue
				}
			}
			return
		}
		id, outcome, ok := decodeReply(msg.Payload)
		if !ok {
			continue
		}
		c.mu.Lock()
		w, waited := c.waiters[id]
		if waited {
			delete(c.waiters, id)
		}
		c.mu.Unlock()
		if waited {
			w <- outcome
			continue
		}
		// No Call is waiting: this is send/receive traffic (or a stale
		// retransmission, which the user-level matcher tolerates).
		select {
		case c.rawCh <- Reply{ID: id, Outcome: outcome}:
		default:
			// User code is not consuming replies; drop, like a full inbox.
		}
	}
}

func decodeReply(payload []byte) (uint64, stream.Outcome, bool) {
	vals, err := wire.Unmarshal(payload)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	kind, err := wire.IntArg(vals, 0)
	if err != nil || kind != kindReply {
		return 0, stream.Outcome{}, false
	}
	id, err := wire.IntArg(vals, 1)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	normRaw, err := wire.Arg(vals, 2)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	norm, err := wire.AsBool(normRaw)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	exc, err := wire.StringArg(vals, 3)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	plRaw, err := wire.Arg(vals, 4)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	pl, err := wire.AsBytes(plRaw)
	if err != nil {
		return 0, stream.Outcome{}, false
	}
	return uint64(id), stream.Outcome{Normal: norm, Exception: exc, Payload: pl}, true
}

func (c *Client) newID() uint64 { return atomic.AddUint64(&c.nextID, 1) }

func encodeRequest(id uint64, port string, args []byte) []byte {
	payload, err := wire.Marshal(kindRequest, int64(id), port, args)
	if err != nil {
		panic(err) // only built-in types
	}
	return payload
}

// encodeRequestCause is encodeRequest with three trailing values: the
// call's derived trace ID and the propagated (root, parent) causal
// context. Legacy servers parse requests positionally (values 0–3) and
// ignore the extras.
func encodeRequestCause(id uint64, port string, args []byte, tid uint64, cause trace.Cause) []byte {
	payload, err := wire.Marshal(kindRequest, int64(id), port, args,
		int64(tid), int64(cause.Root), int64(cause.Parent))
	if err != nil {
		panic(err) // only built-in types
	}
	return payload
}

// Call is a plain RPC: transmit the request now, block until the reply
// arrives, retransmitting up to the configured limit, then give up with
// unavailable. One call per round trip — the cost streams amortize away.
func (c *Client) Call(ctx context.Context, server, port string, args []byte) (stream.Outcome, error) {
	return c.call(ctx, server, port, args, false, trace.Cause{})
}

// ChainStage names one stage of a caller-mediated chain: the server and
// port to call, and extra pre-encoded arguments appended after the
// previous stage's result.
type ChainStage struct {
	Server string
	Port   string
	Extra  []byte
}

// CallChain drives a multi-stage chain over the RPC baseline the only
// way a plain RPC system can: call stage one, wait for its reply, splice
// the result into stage two's arguments, call again — one full client
// round trip per stage. This is the cost model promise pipelining
// removes; E15 measures the two side by side. The chain stops at the
// first exceptional outcome or transport error, returning it.
func (c *Client) CallChain(ctx context.Context, server, port string, args []byte, stages []ChainStage) (stream.Outcome, error) {
	o, err := c.Call(ctx, server, port, args)
	if err != nil || !o.Normal {
		return o, err
	}
	for _, st := range stages {
		spliced, err := wire.SpliceArgs(o.Payload, st.Extra)
		if err != nil {
			return stream.Outcome{}, err
		}
		o, err = c.Call(ctx, st.Server, st.Port, spliced)
		if err != nil || !o.Normal {
			return o, err
		}
	}
	return o, nil
}

// CallCause is Call carrying an upstream causal context: the request is
// stamped with a derived trace ID plus cause's (root, parent), which
// ride as trailing wire values legacy servers ignore. Retransmissions
// re-send the same encoded request, so the context survives retries.
func (c *Client) CallCause(ctx context.Context, server, port string, args []byte, cause trace.Cause) (stream.Outcome, error) {
	return c.call(ctx, server, port, args, true, cause)
}

func (c *Client) call(ctx context.Context, server, port string, args []byte, traced bool, cause trace.Cause) (stream.Outcome, error) {
	id := c.newID()
	w := make(chan stream.Outcome, 1)
	c.mu.Lock()
	c.waiters[id] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}()

	if c.cm != nil {
		c.cm.calls.Inc()
	}
	req := encodeRequest(id, port, args)
	if traced {
		req = encodeRequestCause(id, port, args, trace.CallID(c.traceHash, 0, id), cause)
	}
	rto := c.clk.NewTimer(c.cfg.RTO)
	defer rto.Stop()
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 && c.cm != nil {
			c.cm.retries.Inc()
		}
		if err := c.node.Send(server, req); err != nil {
			return stream.Outcome{}, exception.Unavailable(err.Error())
		}
		if attempt > 0 {
			rto.Reset(c.cfg.RTO)
		}
		select {
		case o := <-w:
			return o, nil
		case <-ctx.Done():
			return stream.Outcome{}, ctx.Err()
		case <-rto.C():
		}
	}
	if c.cm != nil {
		c.cm.exhaustions.Inc()
	}
	return stream.Outcome{}, exception.Unavailable("cannot communicate")
}

// SendAsync is the explicit-send primitive: transmit a request and return
// at once with its ID. The reply — if one comes — must be fished out of
// RecvReply and matched by the user.
func (c *Client) SendAsync(server, port string, args []byte) (uint64, error) {
	id := c.newID()
	if err := c.node.Send(server, encodeRequest(id, port, args)); err != nil {
		return 0, exception.Unavailable(err.Error())
	}
	return id, nil
}

// Resend retransmits a request previously sent with SendAsync; the user
// owns the retry policy in the send/receive style.
func (c *Client) Resend(server, port string, id uint64, args []byte) error {
	if err := c.node.Send(server, encodeRequest(id, port, args)); err != nil {
		return exception.Unavailable(err.Error())
	}
	return nil
}

// RecvReply is the explicit-receive primitive: the next reply message, in
// arrival order, whichever call it belongs to.
func (c *Client) RecvReply(ctx context.Context) (Reply, error) {
	select {
	case r := <-c.rawCh:
		return r, nil
	case <-ctx.Done():
		return Reply{}, ctx.Err()
	}
}

// Matcher is the user-level bookkeeping that the send/receive style
// forces: it records outstanding request IDs and pairs arriving replies
// with them. Ops counts every bookkeeping operation performed — the
// complexity proxy reported by experiment E10.
type Matcher struct {
	outstanding map[uint64]string // id -> tag chosen by the user
	results     map[uint64]stream.Outcome
	ops         int64
}

// NewMatcher creates an empty matcher.
func NewMatcher() *Matcher {
	return &Matcher{
		outstanding: make(map[uint64]string),
		results:     make(map[uint64]stream.Outcome),
	}
}

// Expect records that a request with this ID is outstanding.
func (m *Matcher) Expect(id uint64, tag string) {
	m.ops++
	m.outstanding[id] = tag
}

// Match pairs one received reply with its request. It returns the tag
// given to Expect; ok is false for replies nobody is waiting for
// (duplicates, stale retransmissions), which the user must also handle.
func (m *Matcher) Match(r Reply) (tag string, ok bool) {
	m.ops++
	tag, ok = m.outstanding[r.ID]
	if !ok {
		return "", false
	}
	delete(m.outstanding, r.ID)
	m.results[r.ID] = r.Outcome
	return tag, true
}

// Result returns the outcome matched for an ID.
func (m *Matcher) Result(id uint64) (stream.Outcome, bool) {
	m.ops++
	o, ok := m.results[id]
	return o, ok
}

// Outstanding is the number of requests still awaiting replies.
func (m *Matcher) Outstanding() int { return len(m.outstanding) }

// Ops reports the bookkeeping operations performed so far.
func (m *Matcher) Ops() int64 { return m.ops }

// endpointClock resolves the time source an endpoint provides
// (transport.ClockProvider), defaulting to real time.
func endpointClock(ep transport.Endpoint) clock.Clock {
	if cp, ok := ep.(transport.ClockProvider); ok {
		if c := cp.Clock(); c != nil {
			return c
		}
	}
	return clock.Real{}
}

// endpointMetrics resolves the registry an endpoint provides
// (transport.MetricsProvider); nil disables instrumentation.
func endpointMetrics(ep transport.Endpoint) *metrics.Registry {
	if mp, ok := ep.(transport.MetricsProvider); ok {
		return mp.Metrics()
	}
	return nil
}
