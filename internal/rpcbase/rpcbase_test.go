package rpcbase

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"promises/internal/clock"
	"promises/internal/exception"
	"promises/internal/simnet"
	"promises/internal/stream"
)

var bg = context.Background()

type world struct {
	net    *simnet.Network
	server *Server
	client *Client
}

func newWorld(t *testing.T, cfg simnet.Config) *world {
	t.Helper()
	n := simnet.New(cfg)
	w := &world{net: n}
	w.server = NewServer(n.MustAddNode("server"))
	w.client = NewClient(n.MustAddNode("client"), Config{RTO: 10 * time.Millisecond, MaxRetries: 4})
	t.Cleanup(func() {
		w.client.Close()
		w.server.Close()
		n.Close()
	})
	return w
}

// newVirtualWorld is newWorld on an auto-advancing virtual clock, so RTO
// timeouts and retry exhaustion elapse without real waiting.
func newVirtualWorld(t *testing.T, cfg simnet.Config) *world {
	t.Helper()
	vclk := clock.NewVirtual()
	cfg.Clock = vclk
	vclk.SetAutoAdvance(true)
	// Registered before newWorld's cleanup so (LIFO) the clock advances
	// until the client and server have closed.
	t.Cleanup(func() { vclk.SetAutoAdvance(false) })
	return newWorld(t, cfg)
}

func echo(args []byte) stream.Outcome { return stream.NormalOutcome(args) }

func TestRPCRoundTrip(t *testing.T) {
	w := newWorld(t, simnet.Config{})
	w.server.Handle("echo", echo)
	o, err := w.client.Call(bg, "server", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !o.Normal || string(o.Payload) != "hi" {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestRPCExceptionOutcome(t *testing.T) {
	w := newWorld(t, simnet.Config{})
	w.server.Handle("grump", func([]byte) stream.Outcome {
		return stream.ExceptionOutcome(exception.New("no_such_user"))
	})
	o, err := w.client.Call(bg, "server", "grump", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Normal || o.Exception != "no_such_user" {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestRPCUnknownPort(t *testing.T) {
	w := newWorld(t, simnet.Config{})
	o, err := w.client.Call(bg, "server", "nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Normal || o.Exception != exception.NameFailure {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestRPCRetriesThroughLoss(t *testing.T) {
	vclk := clock.NewVirtual()
	vclk.SetAutoAdvance(true)
	t.Cleanup(func() { vclk.SetAutoAdvance(false) })
	n := simnet.New(simnet.Config{LossRate: 0.3, Seed: 42, Clock: vclk})
	w := &world{net: n}
	w.server = NewServer(n.MustAddNode("server"))
	// Patient client: at 30% loss each attempt succeeds with p≈0.49, so a
	// deep retry budget keeps exhaustion vanishingly unlikely.
	w.client = NewClient(n.MustAddNode("client"), Config{RTO: 5 * time.Millisecond, MaxRetries: 20})
	t.Cleanup(func() {
		w.client.Close()
		w.server.Close()
		n.Close()
	})
	w.server.Handle("echo", echo)
	for i := 0; i < 20; i++ {
		o, err := w.client.Call(bg, "server", "echo", []byte{byte(i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !o.Normal || o.Payload[0] != byte(i) {
			t.Fatalf("call %d outcome = %+v", i, o)
		}
	}
}

func TestRPCDuplicateSuppression(t *testing.T) {
	// Retransmissions must not re-execute the handler.
	var execs int64
	w := newVirtualWorld(t, simnet.Config{LossRate: 0.4, Seed: 9})
	w.server.Handle("count", func(args []byte) stream.Outcome {
		atomic.AddInt64(&execs, 1)
		return stream.NormalOutcome(args)
	})
	const n = 15
	for i := 0; i < n; i++ {
		if _, err := w.client.Call(bg, "server", "count", []byte{byte(i)}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt64(&execs); got != n {
		t.Fatalf("handler executed %d times for %d calls", got, n)
	}
}

func TestRPCGivesUpUnavailable(t *testing.T) {
	w := newVirtualWorld(t, simnet.Config{})
	w.net.Partition("client", "server")
	_, err := w.client.Call(bg, "server", "echo", nil)
	if !exception.IsUnavailable(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestRPCContextCancellation(t *testing.T) {
	w := newWorld(t, simnet.Config{})
	w.net.Partition("client", "server")
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	defer cancel()
	_, err := w.client.Call(ctx, "server", "echo", nil)
	if err == nil || exception.IsUnavailable(err) {
		t.Fatalf("err = %v, want context error before retry exhaustion", err)
	}
}

func TestRPCNoOrderingAcrossConcurrentCalls(t *testing.T) {
	// Unlike streams, concurrent RPCs may execute in any order; all must
	// complete correctly.
	w := newWorld(t, simnet.Config{Jitter: 300 * time.Microsecond, Seed: 3})
	w.server.Handle("echo", echo)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, err := w.client.Call(bg, "server", "echo", []byte{byte(i)})
			if err != nil {
				errs <- err
				return
			}
			if !o.Normal || o.Payload[0] != byte(i) {
				errs <- fmt.Errorf("call %d outcome %+v", i, o)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSendReceiveUserMatching(t *testing.T) {
	// The send/receive style: fire all requests, then receive replies in
	// arrival order and match them by hand.
	w := newWorld(t, simnet.Config{Jitter: 200 * time.Microsecond, Seed: 17})
	w.server.Handle("echo", echo)
	m := NewMatcher()
	const n = 25
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		id, err := w.client.SendAsync("server", "echo", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		m.Expect(id, fmt.Sprintf("call-%d", i))
	}
	for m.Outstanding() > 0 {
		ctx, cancel := context.WithTimeout(bg, 5*time.Second)
		r, err := w.client.RecvReply(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Match(r); !ok {
			t.Fatalf("unmatched reply id %d", r.ID)
		}
	}
	// Every call's result is retrievable and correct.
	for i, id := range ids {
		o, ok := m.Result(id)
		if !ok || !o.Normal || o.Payload[0] != byte(i) {
			t.Fatalf("result %d = %+v, %v", i, o, ok)
		}
	}
	if m.Ops() == 0 {
		t.Fatal("matcher should have counted bookkeeping operations")
	}
}

func TestSendReceiveStaleReplyUnmatched(t *testing.T) {
	w := newWorld(t, simnet.Config{})
	w.server.Handle("echo", echo)
	id, err := w.client.SendAsync("server", "echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// User forgot to Expect: the reply arrives but matches nothing.
	m := NewMatcher()
	ctx, cancel := context.WithTimeout(bg, 5*time.Second)
	defer cancel()
	r, err := w.client.RecvReply(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != id {
		t.Fatalf("reply id = %d", r.ID)
	}
	if _, ok := m.Match(r); ok {
		t.Fatal("reply should be unmatched")
	}
}

func TestResend(t *testing.T) {
	w := newWorld(t, simnet.Config{})
	w.server.Handle("echo", echo)
	args := []byte("again")
	id, err := w.client.SendAsync("server", "echo", args)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.client.Resend("server", "echo", id, args); err != nil {
		t.Fatal(err)
	}
	// Dedup: both transmissions yield replies but the handler ran once;
	// the matcher sees the second as stale.
	m := NewMatcher()
	m.Expect(id, "only")
	ctx, cancel := context.WithTimeout(bg, 5*time.Second)
	defer cancel()
	r, err := w.client.RecvReply(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Match(r); !ok {
		t.Fatal("first reply should match")
	}
}

func TestServerCrashRecover(t *testing.T) {
	w := newVirtualWorld(t, simnet.Config{})
	w.server.Handle("echo", echo)
	serverNode, _ := w.net.Node("server")
	serverNode.Crash()
	_, err := w.client.Call(bg, "server", "echo", nil)
	if !exception.IsUnavailable(err) {
		t.Fatalf("err during crash = %v", err)
	}
	serverNode.Recover()
	o, err := w.client.Call(bg, "server", "echo", []byte("back"))
	if err != nil || !o.Normal {
		t.Fatalf("after recover = %+v, %v", o, err)
	}
}
