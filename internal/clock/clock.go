// Package clock abstracts time for the whole runtime. Every layer that
// sleeps, ticks, schedules a deadline, or timestamps an event does so
// through a Clock, so one system — simnet, streams, guardians, the bench
// harness — can run either on the wall clock (Real) or on a deterministic
// logical clock (Virtual) without code changes.
//
// Real is the default everywhere and delegates to package time; nothing
// observable changes for code that never asks for a different clock.
// Virtual keeps a logical "now" that moves only when told to (Advance,
// Step) or when auto-advance decides the process is quiescent and jumps
// to the next deadline — so simulated seconds elapse in microseconds of
// real time, and a fault schedule expressed in virtual time is exactly
// reproducible.
package clock

import "time"

// Clock is the time source threaded through the runtime.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed. Like time.After, the underlying timer cannot be stopped;
	// prefer NewTimer in loops.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a single-shot timer that fires after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d. d must be positive.
	NewTicker(d time.Duration) Ticker
}

// Timer is a resettable single-shot timer with time.Timer semantics: the
// channel has capacity 1, a fire is a non-blocking send, and Stop/Reset
// report whether the timer was still pending. As with time.Timer, a
// caller that Resets after a failed Stop must drain the channel first or
// tolerate one stale delivery.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// Ticker delivers the clock's time once per period on C, dropping ticks
// the receiver is too slow to take, like time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real is the wall clock: every method delegates to package time.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After calls time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer wraps time.NewTimer.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// NewTicker wraps time.NewTicker.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time        { return t.t.C }
func (t realTimer) Stop() bool                 { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// IsVirtual reports whether c is a *Virtual clock. Layers that spin on
// the wall clock for sub-millisecond precision (the simnet dispatcher)
// use it to skip the spin: a virtual timer is exact, so there is no OS
// timer floor to dodge.
func IsVirtual(c Clock) bool {
	_, ok := c.(*Virtual)
	return ok
}
