package clock

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestRealDelegates(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("Real.Now went backwards")
	}
	c.Sleep(time.Millisecond)
	timer := c.NewTimer(time.Millisecond)
	select {
	case <-timer.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	if timer.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	tick := c.NewTicker(time.Millisecond)
	select {
	case <-tick.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never fired")
	}
	tick.Stop()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("real After never fired")
	}
	if IsVirtual(c) {
		t.Fatal("Real is not virtual")
	}
}

func TestVirtualNowFrozenUntilAdvanced(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("fresh virtual clock reads %v, want %v", v.Now(), Epoch)
	}
	time.Sleep(2 * time.Millisecond) // real time passing changes nothing
	if !v.Now().Equal(Epoch) {
		t.Fatal("virtual time moved without Advance")
	}
	v.Advance(3 * time.Second)
	if got := v.Now().Sub(Epoch); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
	if !IsVirtual(v) {
		t.Fatal("IsVirtual(Virtual) = false")
	}
}

func TestVirtualTimerFiresAtDeadline(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(10 * time.Millisecond)
	v.Advance(9 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	v.Advance(time.Millisecond)
	select {
	case at := <-tm.C():
		if want := Epoch.Add(10 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestVirtualTimerStopAndReset(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	v.Advance(time.Hour)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Reset(time.Millisecond) {
		t.Fatal("Reset on stopped timer should report false")
	}
	v.Advance(time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
	// Non-positive durations fire immediately, like time.Timer.
	im := v.NewTimer(0)
	select {
	case <-im.C():
	default:
		t.Fatal("zero-duration timer should fire immediately")
	}
}

func TestVirtualSleepAndAfter(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait until the sleeper is registered, then release it.
	for v.Waiters() == 0 {
		runtime.Gosched()
	}
	v.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("virtual Sleep never returned")
	}

	ch := v.After(time.Second)
	v.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("After channel did not deliver")
	}
	v.Sleep(0) // non-positive: yields without registering
}

func TestVirtualTickerRearms(t *testing.T) {
	v := NewVirtual()
	tick := v.NewTicker(time.Millisecond)
	for i := 1; i <= 3; i++ {
		v.Advance(time.Millisecond)
		select {
		case at := <-tick.C():
			if want := Epoch.Add(time.Duration(i) * time.Millisecond); !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
	// A slow receiver drops ticks instead of queueing them.
	v.Advance(10 * time.Millisecond)
	<-tick.C()
	select {
	case <-tick.C():
		t.Fatal("ticker queued more than one tick")
	default:
	}
	tick.Stop()
	if got := v.Waiters(); got != 0 {
		t.Fatalf("%d waiters after ticker Stop", got)
	}
	v.Advance(time.Hour)
	select {
	case <-tick.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestStepJumpsToNextDeadlineInOrder(t *testing.T) {
	v := NewVirtual()
	// Two waiters at the same instant and one later: the first Step fires
	// exactly the co-deadlined pair, the second fires the straggler.
	t1, t2, t3 := v.NewTimer(5*time.Millisecond), v.NewTimer(5*time.Millisecond), v.NewTimer(7*time.Millisecond)

	if at, ok := v.NextDeadline(); !ok || !at.Equal(Epoch.Add(5*time.Millisecond)) {
		t.Fatalf("NextDeadline = %v, %v", at, ok)
	}
	if !v.Step() {
		t.Fatal("Step with waiters pending returned false")
	}
	if got := v.Now().Sub(Epoch); got != 5*time.Millisecond {
		t.Fatalf("Step advanced to %v", got)
	}
	fired := func(tm Timer) bool {
		select {
		case <-tm.C():
			return true
		default:
			return false
		}
	}
	if !fired(t1) || !fired(t2) {
		t.Fatal("co-deadlined timers did not both fire on the first Step")
	}
	if fired(t3) {
		t.Fatal("later timer fired early")
	}
	if !v.Step() {
		t.Fatal("second Step returned false")
	}
	if got := v.Now().Sub(Epoch); got != 7*time.Millisecond {
		t.Fatalf("second Step advanced to %v", got)
	}
	if !fired(t3) {
		t.Fatal("later timer did not fire on the second Step")
	}
	if v.Step() {
		t.Fatal("Step with no waiters should report false")
	}
}

func TestAutoAdvanceRunsSleepsWithoutDriver(t *testing.T) {
	v := NewVirtual()
	v.SetAutoAdvance(true)
	defer v.SetAutoAdvance(false)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		// A whole simulated minute, step by step.
		for i := 0; i < 60; i++ {
			v.Sleep(time.Second)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("auto-advance never drove the sleeps")
	}
	if got := v.Now().Sub(Epoch); got < time.Minute {
		t.Fatalf("virtual time advanced only %v", got)
	}
	if real := time.Since(start); real > 10*time.Second {
		t.Fatalf("60 virtual seconds took %v of real time", real)
	}
	v.SetAutoAdvance(true)  // idempotent
	v.SetAutoAdvance(false) // stops the loop
	v.SetAutoAdvance(false) // idempotent
	v.SetAutoAdvance(true)  // restartable
}

// TestVirtualGoroutineStabilityUnderChurn is the regression test for the
// clock's O(1) goroutine guarantee: timers, tickers, and auto-advance
// must not leak goroutines no matter how many clock objects churn
// through. Virtual timers are heap entries, not goroutines, so thousands
// of them should leave the goroutine count where it started.
func TestVirtualGoroutineStabilityUnderChurn(t *testing.T) {
	v := NewVirtual()
	v.SetAutoAdvance(true)
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tm := v.NewTimer(time.Duration(1+i%7) * time.Millisecond)
				if i%2 == 0 {
					tm.Stop()
				}
				tm.Reset(time.Duration(1+i%5) * time.Millisecond)
				tk := v.NewTicker(time.Duration(1+i%3) * time.Millisecond)
				tk.Stop()
				v.Sleep(time.Duration(1+i%4) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	v.SetAutoAdvance(false)
	// Drain timers that were reset and abandoned after the loop stopped.
	for v.Step() {
	}

	// Let fired-timer bookkeeping quiesce.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	// Allow slack for runtime/test goroutines, but 4000 timers and 4000
	// tickers must not have pinned goroutines of their own.
	if after > before+4 {
		t.Fatalf("goroutines grew from %d to %d under timer churn", before, after)
	}
	if v.Waiters() != 0 {
		// Fired and stopped waiters must not linger as pending.
		t.Fatalf("%d waiters left pending after churn", v.Waiters())
	}
}

func TestAdvanceToNeverMovesBackwards(t *testing.T) {
	v := NewVirtual()
	v.Advance(time.Second)
	v.AdvanceTo(Epoch) // in the past: no-op
	if got := v.Now().Sub(Epoch); got != time.Second {
		t.Fatalf("time moved backwards to %v", got)
	}
	v.Advance(-time.Second) // negative: no-op
	if got := v.Now().Sub(Epoch); got != time.Second {
		t.Fatalf("negative Advance moved time to %v", got)
	}
}
