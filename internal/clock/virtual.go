package clock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"promises/internal/pqueue"
)

// Epoch is where virtual time starts: an arbitrary fixed instant (the
// paper's publication month), so virtual timestamps are recognizable in
// traces and identical across runs.
var Epoch = time.Date(1988, time.June, 22, 0, 0, 0, 0, time.UTC)

// waiter is one scheduled wake-up in the virtual clock's heap. fire runs
// with the clock's lock held and must not block — it is a close or a
// non-blocking send on a buffered channel. Cancellation is lazy: Stop
// clears active and the entry is skipped when it surfaces in the heap.
type waiter struct {
	at     time.Time
	seq    uint64 // registration order; FIFO tiebreak among equal deadlines
	active bool
	period time.Duration // > 0: re-arm at at+period after firing (ticker)
	fire   func(at time.Time)
}

// Virtual is a deterministic logical clock. Time stands still until it is
// advanced: Advance/AdvanceTo move it explicitly, Step jumps to the next
// waiter deadline, and auto-advance (SetAutoAdvance) does the jumping on
// its own once the process looks quiescent. Waiters — sleeps, timers,
// tickers — live in a min-heap reusing pqueue.Heap, keyed by (deadline,
// registration order), so equal deadlines fire in FIFO order, the same
// every run.
//
// All methods are safe for concurrent use.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	heap    *pqueue.Heap[*waiter]
	seq     uint64
	pending int // active waiters in the heap

	// activity counts every clock operation (Now, Sleep, timer arm, fire,
	// Stop). Settle watches it to decide the process has gone quiescent.
	activity atomic.Uint64
	// kick is signaled when a waiter is registered, so the auto-advance
	// loop wakes from its idle wait. Buffered: signals coalesce.
	kick chan struct{}

	autoMu sync.Mutex
	stop   chan struct{} // non-nil while auto-advance runs
	autoWG sync.WaitGroup
}

// NewVirtual creates a virtual clock reading Epoch, with no waiters and
// auto-advance off.
func NewVirtual() *Virtual {
	v := &Virtual{
		now:  Epoch,
		kick: make(chan struct{}, 1),
	}
	v.heap = pqueue.NewHeap(func(a, b *waiter) bool {
		if !a.at.Equal(b.at) {
			return a.at.Before(b.at)
		}
		return a.seq < b.seq
	})
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.activity.Add(1)
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// registerLocked arms a waiter. Caller holds v.mu.
func (v *Virtual) registerLocked(at time.Time, period time.Duration, fire func(time.Time)) *waiter {
	v.seq++
	w := &waiter{at: at, seq: v.seq, active: true, period: period, fire: fire}
	v.heap.Push(w)
	v.pending++
	v.activity.Add(1)
	select {
	case v.kick <- struct{}{}:
	default:
	}
	return w
}

// cancelLocked lazily deletes a waiter, reporting whether it was still
// pending. Caller holds v.mu.
func (v *Virtual) cancelLocked(w *waiter) bool {
	if w == nil || !w.active {
		return false
	}
	w.active = false
	v.pending--
	v.activity.Add(1)
	return true
}

// Sleep blocks until virtual time has advanced by d. A non-positive d
// just yields, like time.Sleep.
func (v *Virtual) Sleep(d time.Duration) {
	v.activity.Add(1)
	if d <= 0 {
		runtime.Gosched()
		return
	}
	done := make(chan struct{})
	v.mu.Lock()
	v.registerLocked(v.now.Add(d), 0, func(time.Time) { close(done) })
	v.mu.Unlock()
	<-done
}

// After returns a channel that delivers the virtual time once d has
// elapsed on this clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C()
}

// NewTimer returns a single-shot virtual timer. No goroutine is created;
// the timer is an entry in the clock's heap.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	t := &vtimer{v: v, ch: make(chan time.Time, 1)}
	v.activity.Add(1)
	v.mu.Lock()
	if d <= 0 {
		t.ch <- v.now // fires immediately, like time.NewTimer(0)
	} else {
		t.w = v.registerLocked(v.now.Add(d), 0, t.send)
	}
	v.mu.Unlock()
	return t
}

type vtimer struct {
	v  *Virtual
	ch chan time.Time
	w  *waiter // current heap entry; guarded by v.mu (nil after a d<=0 arm)
}

func (t *vtimer) send(at time.Time) {
	select {
	case t.ch <- at:
	default:
	}
}

func (t *vtimer) C() <-chan time.Time { return t.ch }

func (t *vtimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	return t.v.cancelLocked(t.w)
}

func (t *vtimer) Reset(d time.Duration) bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	was := t.v.cancelLocked(t.w)
	if d <= 0 {
		t.w = nil
		t.send(t.v.now)
		return was
	}
	t.w = t.v.registerLocked(t.v.now.Add(d), 0, t.send)
	return was
}

// NewTicker returns a virtual ticker firing every d. The ticker reuses
// one heap entry, re-armed at each fire, so a long-lived ticker does not
// grow the heap.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	t := &vticker{v: v, ch: make(chan time.Time, 1)}
	v.activity.Add(1)
	v.mu.Lock()
	t.w = v.registerLocked(v.now.Add(d), d, t.send)
	v.mu.Unlock()
	return t
}

type vticker struct {
	v  *Virtual
	ch chan time.Time
	w  *waiter
}

func (t *vticker) send(at time.Time) {
	select {
	case t.ch <- at:
	default:
	}
}

func (t *vticker) C() <-chan time.Time { return t.ch }

func (t *vticker) Stop() {
	t.v.mu.Lock()
	t.v.cancelLocked(t.w)
	t.v.mu.Unlock()
}

// AdvanceTo moves virtual time to target, firing every waiter whose
// deadline is at or before target in (deadline, registration) order.
// Waiters armed by fire callbacks (a ticker's re-arm) that still fall
// within target fire in the same pass. Time never moves backwards; a
// target in the past only fires already-due waiters.
func (v *Virtual) AdvanceTo(target time.Time) {
	v.activity.Add(1)
	v.mu.Lock()
	for {
		w, ok := v.heap.Peek()
		if !ok || w.at.After(target) {
			break
		}
		v.heap.Pop()
		if !w.active {
			continue // lazily-deleted entry
		}
		if w.at.After(v.now) {
			v.now = w.at
		}
		w.fire(w.at)
		v.activity.Add(1)
		if w.period > 0 {
			// Re-arm the ticker entry in place.
			w.at = w.at.Add(w.period)
			v.seq++
			w.seq = v.seq
			v.heap.Push(w)
		} else {
			w.active = false
			v.pending--
		}
	}
	if target.After(v.now) {
		v.now = target
	}
	v.mu.Unlock()
}

// Advance moves virtual time forward by d, firing due waiters in order.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// Step jumps to the earliest waiter deadline and fires every waiter due
// at that instant. It reports false when no waiter is pending (time does
// not move).
func (v *Virtual) Step() bool {
	at, ok := v.NextDeadline()
	if !ok {
		return false
	}
	v.AdvanceTo(at)
	return true
}

// NextDeadline returns the earliest pending waiter deadline.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		w, ok := v.heap.Peek()
		if !ok {
			return time.Time{}, false
		}
		if !w.active {
			v.heap.Pop() // compact lazily-deleted entries
			continue
		}
		return w.at, true
	}
}

// Waiters returns the number of pending waiters (sleeps, unfired timers,
// tickers).
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.pending
}

// Settle blocks until the process looks quiescent from the clock's point
// of view: no clock operation (Now, Sleep, timer arm/fire/stop) has
// happened for a few scheduling rounds. Lock-step drivers call it between
// advances so every consequence of the last advance — message deliveries,
// tick handlers, sends they trigger — has played out before time moves
// again. Goroutines blocked on non-clock events that will never touch the
// clock cannot be seen, and need not be: they do not affect time.
func (v *Virtual) Settle() {
	last := v.activity.Load()
	stable, rounds := 0, 0
	// With GOMAXPROCS > 1 a just-woken goroutine may sit runnable on
	// another P for longer than a burst of yields, so quiescence needs
	// more consecutive quiet observations — and an occasional real
	// micro-sleep — before it is believed. Single-P runs keep the cheap
	// fast path.
	need := 2
	if runtime.GOMAXPROCS(0) > 1 {
		need = 4
	}
	for stable < need {
		for i := 0; i < 64; i++ {
			runtime.Gosched()
		}
		rounds++
		if rounds%8 == 0 || (stable > 0 && need > 2) {
			// A periodic real micro-sleep (never a virtual one) lets
			// runnable goroutines on other Ps get CPU if pure yielding
			// starves them. Kept off the fast path: an OS sleep has a
			// ~50µs floor, and Settle runs once per simulated instant.
			time.Sleep(20 * time.Microsecond)
		}
		if cur := v.activity.Load(); cur == last {
			stable++
		} else {
			stable = 0
			last = cur
		}
	}
}

// SetAutoAdvance turns the auto-advance goroutine on or off. While on,
// the clock repeatedly waits for quiescence (Settle) and then jumps to
// the next waiter deadline (Step), so sleeps and timeouts elapse in
// microseconds of real time with no test code driving the clock. Turning
// it off blocks until the goroutine has exited. Auto-advance trades the
// strict determinism of explicit stepping for convenience: use explicit
// AdvanceTo loops (as package simtest does) when runs must be
// byte-for-byte reproducible.
func (v *Virtual) SetAutoAdvance(on bool) {
	v.autoMu.Lock()
	defer v.autoMu.Unlock()
	if on == (v.stop != nil) {
		return
	}
	if !on {
		close(v.stop)
		v.stop = nil
		v.autoWG.Wait()
		return
	}
	stop := make(chan struct{})
	v.stop = stop
	v.autoWG.Add(1)
	go v.autoLoop(stop)
}

func (v *Virtual) autoLoop(stop chan struct{}) {
	defer v.autoWG.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		v.Settle()
		select {
		case <-stop:
			return
		default:
		}
		if !v.Step() {
			// Nothing scheduled: block until a waiter arrives.
			select {
			case <-stop:
				return
			case <-v.kick:
			}
		}
	}
}
