// Package ops is the live operations plane: a small HTTP server, built
// only on the standard library, that exposes a running process's
// observability surfaces — the metrics registry, per-stream health, and
// the trace flight recorder — plus net/http/pprof. Every daemon
// (gradesd, mailer, benchtab) mounts it behind an -ops=addr flag, and
// cmd/streamscope -live attaches to one or more of these endpoints to
// merge their rings into a cross-process causal waterfall.
//
// Endpoints:
//
//	/metrics   deterministic text table (?format=json for the snapshot)
//	/healthz   JSON per-peer stream state: role, incarnation, credit,
//	           in-flight window, delivery/completion cursors
//	/trace     JSON drain of the flight recorder: ring window, anomaly
//	           snapshots, anomaly count
//	/debug/pprof/...  the standard pprof handlers
//
// The server is read-only and side-effect-free: scraping it never
// perturbs the streams it observes beyond the brief per-stream lock
// Health() takes. It binds its own mux, never the default one, so
// importing ops does not leak handlers into other servers.
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"promises/internal/metrics"
	"promises/internal/stream"
	"promises/internal/trace"
)

// PeerHealth is what /healthz needs from a stream peer. *stream.Peer
// satisfies it; the indirection keeps test fakes trivial.
type PeerHealth interface {
	Health() []stream.StreamHealth
}

// Config names the process and wires in its observability surfaces.
// Every field is optional: a nil registry serves an empty snapshot, a
// nil recorder serves an empty trace dump, and no peers serve an empty
// stream list — so a process can mount the plane before any of its
// guardians exist.
type Config struct {
	Node     string          // process name reported in every reply
	Metrics  *metrics.Registry
	Recorder *trace.Recorder
	Peers    []PeerHealth // each contributes its streams to /healthz
}

// HealthReply is /healthz's JSON schema (pinned by the CI ops-boot
// check): the node name, the scrape instant, and every live stream.
type HealthReply struct {
	Node    string                `json:"node"`
	Now     time.Time             `json:"now"`
	Streams []stream.StreamHealth `json:"streams"`
}

// TraceDump is /trace's JSON schema: the flight recorder's current
// window plus its retained anomaly snapshots. streamscope -live decodes
// exactly this shape from each attached process.
type TraceDump struct {
	Node      string                  `json:"node"`
	Anomalies uint64                  `json:"anomalies"`
	Events    []trace.Event           `json:"events"`
	Snapshots []trace.AnomalySnapshot `json:"snapshots,omitempty"`
}

// Server is one process's ops plane, serving until Close.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port — read it back with Addr)
// and starts serving the ops endpoints in a background goroutine.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

// handleMetrics serves the registry snapshot: the deterministic aligned
// text table by default, the JSON snapshot with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Metrics.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.WriteText(w)
}

// handleHealthz serves every registered peer's stream state, in each
// peer's deterministic (role, key) order.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	streams := make([]stream.StreamHealth, 0, 8)
	for _, p := range s.cfg.Peers {
		streams = append(streams, p.Health()...)
	}
	writeJSON(w, HealthReply{Node: s.cfg.Node, Now: time.Now(), Streams: streams})
}

// handleTrace drains the flight recorder: the bounded ring's current
// window (oldest first) and the anomaly snapshots it auto-flushed.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	dump := TraceDump{Node: s.cfg.Node, Events: []trace.Event{}}
	if rec := s.cfg.Recorder; rec != nil {
		dump.Events = rec.Events()
		dump.Snapshots = rec.Snapshots()
		dump.Anomalies = rec.Anomalies()
	}
	writeJSON(w, dump)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// Plane is the daemon-side wiring for the ops plane: the metrics
// registry every guardian in the process inherits, the always-on flight
// recorder their peers record into, and the address the HTTP server
// will bind. A nil Plane (flag unset) disables all of it — every method
// is nil-safe and free.
type Plane struct {
	addr     string
	Registry *metrics.Registry
	Recorder *trace.Recorder
}

// NewPlane builds the plane for -ops=addr, or returns nil when the flag
// is unset. The flight recorder holds the most recent 16384 events and
// up to 8 anomaly snapshots.
func NewPlane(addr string) *Plane {
	if addr == "" {
		return nil
	}
	return &Plane{
		addr:     addr,
		Registry: metrics.NewRegistry(),
		Recorder: trace.NewRecorder(1<<14, 8),
	}
}

// Instrument threads the plane's registry into the stream options the
// process builds its guardians with.
func (p *Plane) Instrument(opts stream.Options) stream.Options {
	if p != nil {
		opts.Metrics = p.Registry
	}
	return opts
}

// Serve installs the flight recorder on each peer and starts the HTTP
// server. The returned stop function is a no-op on a nil plane.
func (p *Plane) Serve(node string, peers ...*stream.Peer) (stop func(), err error) {
	if p == nil {
		return func() {}, nil
	}
	hp := make([]PeerHealth, len(peers))
	for i, pr := range peers {
		pr.SetTracer(p.Recorder)
		hp[i] = pr
	}
	srv, err := Serve(p.addr, Config{
		Node: node, Metrics: p.Registry, Recorder: p.Recorder, Peers: hp,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("ops plane on http://%s (/metrics /healthz /trace /debug/pprof)\n", srv.Addr())
	return func() { srv.Close() }, nil
}
