package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"promises/internal/metrics"
	"promises/internal/stream"
	"promises/internal/trace"
)

// fakePeer serves a fixed health snapshot.
type fakePeer struct{ streams []stream.StreamHealth }

func (f *fakePeer) Health() []stream.StreamHealth { return f.streams }

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return body
}

func TestOpsEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ops_test_total").Add(7)
	reg.Histogram("ops_test_ns", metrics.PowersOf(4, 1000, 4)).Observe(2500)

	rec := trace.NewRecorder(64, 4)
	rec.Record(trace.Event{
		At: time.Now(), Kind: trace.CallEnqueued,
		Stream: "a/x->b/y", Seq: 1, TraceID: 0xABC, Root: 0xABC, Parent: 0xABC,
		Detail: "call",
	})
	rec.Record(trace.Event{
		At: time.Now(), Kind: trace.StreamBroken,
		Stream: "a/x->b/y", Detail: "test-break",
	})

	peer := &fakePeer{streams: []stream.StreamHealth{
		{Key: "a/x->b/y", Role: "send", Incarnation: 1, NextSeq: 5, NextResolve: 3, InFlight: 2, Credit: 64},
		{Key: "a/x->b/y", Role: "recv", Incarnation: 1, Epoch: 42, Expected: 5, Completed: 4},
	}}

	srv, err := Serve("127.0.0.1:0", Config{
		Node: "testnode", Metrics: reg, Recorder: rec, Peers: []PeerHealth{peer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics text: deterministic table with the counter and quantiles.
	text := string(get(t, base+"/metrics"))
	if !strings.Contains(text, "ops_test_total") || !strings.Contains(text, "7") {
		t.Errorf("/metrics text missing counter:\n%s", text)
	}
	if !strings.Contains(text, "p99=") {
		t.Errorf("/metrics text missing quantiles:\n%s", text)
	}

	// /metrics?format=json: a decodable snapshot.
	var snap metrics.Snapshot
	if err := json.Unmarshal(get(t, base+"/metrics?format=json"), &snap); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if snap.Counters["ops_test_total"] != 7 {
		t.Errorf("snapshot counter = %d, want 7", snap.Counters["ops_test_total"])
	}

	// /healthz: the registered peer's streams, schema intact.
	var health HealthReply
	if err := json.Unmarshal(get(t, base+"/healthz"), &health); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if health.Node != "testnode" {
		t.Errorf("health node = %q, want testnode", health.Node)
	}
	if len(health.Streams) != 2 {
		t.Fatalf("health streams = %d, want 2", len(health.Streams))
	}
	if health.Streams[0].Credit != 64 || health.Streams[1].Epoch != 42 {
		t.Errorf("health stream fields lost: %+v", health.Streams)
	}

	// /trace: the ring window and the anomaly snapshot the break flushed.
	var dump TraceDump
	if err := json.Unmarshal(get(t, base+"/trace"), &dump); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if dump.Node != "testnode" || len(dump.Events) != 2 {
		t.Fatalf("trace dump = node %q, %d events; want testnode, 2", dump.Node, len(dump.Events))
	}
	if dump.Events[0].TraceID != 0xABC || dump.Events[0].Root != 0xABC {
		t.Errorf("trace event lost causal fields: %+v", dump.Events[0])
	}
	if dump.Anomalies != 1 || len(dump.Snapshots) != 1 || dump.Snapshots[0].Reason != "stream-broken" {
		t.Errorf("anomaly snapshot missing: anomalies=%d snaps=%+v", dump.Anomalies, dump.Snapshots)
	}

	// pprof index answers.
	if body := get(t, base+"/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile link")
	}
}

// TestOpsEmptyConfig: the plane must boot before any guardian exists —
// every endpoint answers with an empty-but-valid body.
func TestOpsEmptyConfig(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{Node: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var health HealthReply
	if err := json.Unmarshal(get(t, base+"/healthz"), &health); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if health.Streams == nil || len(health.Streams) != 0 {
		t.Errorf("empty health streams should encode as [], got %+v", health.Streams)
	}
	var dump TraceDump
	if err := json.Unmarshal(get(t, base+"/trace"), &dump); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(dump.Events) != 0 {
		t.Errorf("empty trace dump has %d events", len(dump.Events))
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(get(t, base+"/metrics?format=json"), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
}

// TestOpsHealthFromRealPeer wires a live stream.Peer in and checks its
// streams appear after traffic.
func TestOpsHealthFromRealPeer(t *testing.T) {
	// The stream package's own tests cover Health()'s cursor values;
	// here the point is only that *stream.Peer satisfies PeerHealth.
	var _ PeerHealth = (*stream.Peer)(nil)
}
