// Package fork extends promises to local calls (Liskov & Shrira, PLDI
// 1988, §3.2). A fork causes a call of a local procedure to run in
// parallel with the caller; when the procedure terminates, its results are
// stored in a promise, which then becomes claimable.
//
// Of the three properties of stream-call promises — concurrency of caller
// and callee, caller control of claiming, and ordered processing — forked
// promises have the first two. Their chief virtue, which the paper calls
// "a solution to a problem that has been a concern to language designers,"
// is the convenient, type-safe propagation of exceptions from the forked
// process to whichever process claims the promise.
//
// Arguments are passed by sharing, as in Argus: Go closures capture
// references to heap objects, so no encoding or copying occurs, and there
// are no lifetime problems — captured objects live as long as any process
// references them.
package fork

import (
	"fmt"

	"promises/internal/exception"
	"promises/internal/promise"
)

// Go runs proc in a new process, returning a promise for its result. If
// proc returns a non-nil error, the promise resolves with that exception
// (errors that are not exceptions become failure exceptions); if proc
// panics, the promise resolves with a failure exception describing the
// panic, so a programming error in a forked process surfaces at the claim
// site instead of killing the program.
func Go[T any](proc func() (T, error)) *promise.Promise[T] {
	p := promise.New[T]()
	go run(p, proc)
	return p
}

// Do is Go for procedures with no normal results: the promise carries only
// the termination condition, mirroring "promise signals (...)" types like
// pt1 = promise signals (cannot_record) in Figure 4-1.
func Do(proc func() error) *promise.Promise[promise.Unit] {
	return Go(func() (promise.Unit, error) {
		return promise.Unit{}, proc()
	})
}

func run[T any](p *promise.Promise[T], proc func() (T, error)) {
	defer func() {
		if r := recover(); r != nil {
			p.Signal(exception.Failuref("forked process panicked: %v", r))
		}
	}()
	v, err := proc()
	if err != nil {
		p.Signal(toException(err))
		return
	}
	p.Fulfill(v)
}

func toException(err error) *exception.Exception {
	if ex, ok := exception.As(err); ok {
		return ex
	}
	return exception.Failure(fmt.Sprint(err))
}
