package fork

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"promises/internal/exception"
	"promises/internal/promise"
)

func TestGoRunsInParallel(t *testing.T) {
	gate := make(chan struct{})
	p := Go(func() (int, error) {
		<-gate
		return 7, nil
	})
	if p.Ready() {
		t.Fatal("promise ready before procedure finished")
	}
	close(gate) // the caller kept running while the fork was blocked
	v, err := p.MustClaim()
	if err != nil || v != 7 {
		t.Fatalf("Claim = %d, %v", v, err)
	}
}

func TestGoPropagatesException(t *testing.T) {
	p := Go(func() (int, error) {
		return 0, exception.New("e", "arg")
	})
	_, err := p.MustClaim()
	if !exception.Is(err, "e") {
		t.Fatalf("Claim err = %v", err)
	}
}

func TestGoWrapsPlainErrors(t *testing.T) {
	p := Go(func() (int, error) {
		return 0, errFake
	})
	_, err := p.MustClaim()
	if !exception.IsFailure(err) {
		t.Fatalf("Claim err = %v, want failure", err)
	}
}

var errFake = errTest("synthetic")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestGoRecoverPanic(t *testing.T) {
	p := Go(func() (int, error) {
		panic("boom")
	})
	_, err := p.MustClaim()
	if !exception.IsFailure(err) {
		t.Fatalf("Claim err = %v, want failure", err)
	}
}

func TestDoSignalsOnly(t *testing.T) {
	p := Do(func() error { return nil })
	if _, err := p.MustClaim(); err != nil {
		t.Fatal(err)
	}
	q := Do(func() error { return exception.New("cannot_record") })
	if _, err := q.MustClaim(); !exception.Is(err, "cannot_record") {
		t.Fatalf("err = %v", err)
	}
}

func TestPassBySharing(t *testing.T) {
	// Arguments are passed by sharing: the fork sees the same heap object.
	buf := make([]int, 4)
	p := Do(func() error {
		buf[2] = 9
		return nil
	})
	if _, err := p.MustClaim(); err != nil {
		t.Fatal(err)
	}
	if buf[2] != 9 {
		t.Fatal("fork did not share the argument object")
	}
}

func TestManyForks(t *testing.T) {
	var ran int64
	const n = 100
	ps := make([]*promise.Promise[int], n)
	for i := range ps {
		i := i
		ps[i] = Go(func() (int, error) {
			atomic.AddInt64(&ran, 1)
			return i * i, nil
		})
	}
	for i, p := range ps {
		v, err := p.MustClaim()
		if err != nil || v != i*i {
			t.Fatalf("fork %d = %d, %v", i, v, err)
		}
	}
	if atomic.LoadInt64(&ran) != n {
		t.Fatalf("ran = %d", ran)
	}
}

func TestForkedTreeSearch(t *testing.T) {
	// §3.2: nodes of a tree can be promises; a search that reaches a node
	// not yet claimable waits until the promise is ready.
	type node struct {
		val         int
		left, right *promise.Promise[any]
	}
	leftP := promise.New[any]()
	root := &node{val: 10, left: leftP, right: promise.Resolved[any](nil)}
	found := Go(func() (bool, error) {
		v, err := root.left.MustClaim()
		if err != nil {
			return false, err
		}
		n, _ := v.(*node)
		return n != nil && n.val == 5, nil
	})
	time.Sleep(time.Millisecond) // search is blocked on the unready node
	if found.Ready() {
		t.Fatal("search finished before insertion")
	}
	leftP.Fulfill(&node{val: 5})
	ok, err := found.MustClaim()
	if err != nil || !ok {
		t.Fatalf("search = %v, %v", ok, err)
	}
}

// Property: for any procedure result, claiming the forked promise yields
// exactly that result.
func TestPropertyForkDeliversResult(t *testing.T) {
	f := func(v int64) bool {
		p := Go(func() (int64, error) { return v, nil })
		got, err := p.MustClaim()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
