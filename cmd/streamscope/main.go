// Command streamscope inspects a call-stream run end to end: it joins
// every node's trace ring into per-call timelines (enqueued -> sent ->
// delivered -> executed -> replied -> resolved), prints waterfalls and
// per-stream latency tables, dumps the metrics registry, and can emit a
// Chrome trace_event file loadable in Perfetto or chrome://tracing.
//
// By default it runs one seeded deterministic simulation (the same
// scenario engine as simtrace), so the same seed prints the same bytes:
//
//	streamscope -seed 42                  # waterfalls + tables + metrics
//	streamscope -seed 42 -v               # plus per-call stage bars
//	streamscope -seed 42 -chrome t.json   # Perfetto-loadable trace
//	streamscope -seed 42 -metrics-json m.json -events-json e.json
//	streamscope -in e.json                # inspect a saved event dump
//	streamscope -seed 42 -check           # schema/monotonicity gate (CI)
//
// With -live it attaches to running processes instead: it drains each
// named ops plane's /trace flight recorder, merges the rings by trace
// ID, and renders the cross-process causal waterfall — calls that hop
// between guardians in different OS processes appear as one indented
// chain under their shared root trace ID:
//
//	streamscope -live 127.0.0.1:9001,127.0.0.1:9002
//	streamscope -live 127.0.0.1:9001 -chrome live.json -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"promises/internal/clock"
	"promises/internal/metrics"
	"promises/internal/ops"
	"promises/internal/simtest"
	"promises/internal/trace"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "script seed; same seed, same output")
		servers     = flag.Int("servers", 2, "server guardians")
		clients     = flag.Int("clients", 2, "client guardians")
		calls       = flag.Int("calls", 8, "calls per client")
		verbose     = flag.Bool("v", false, "render per-call stage bars")
		inPath      = flag.String("in", "", "inspect a saved -events-json dump instead of running a simulation")
		live        = flag.String("live", "", "attach to running processes: comma-separated ops-plane addresses whose /trace rings are drained and merged")
		chromePath  = flag.String("chrome", "", "write Chrome trace_event JSON to this file")
		metricsPath = flag.String("metrics-json", "", "write the final metrics snapshot as JSON to this file")
		eventsPath  = flag.String("events-json", "", "write the raw trace events as JSON to this file")
		check       = flag.Bool("check", false, "verify snapshot schema + counter monotonicity; nonzero exit on failure")
	)
	flag.Parse()

	var (
		events []trace.Event
		mid    *metrics.Snapshot
		final  *metrics.Snapshot
	)
	switch {
	case *live != "":
		events = fetchLive(*live)
	case *inPath != "":
		data, err := os.ReadFile(*inPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &events); err != nil {
			fatal(fmt.Errorf("%s: %w", *inPath, err))
		}
	default:
		r, err := simtest.Run(simtest.Options{
			Seed: *seed, Servers: *servers, Clients: *clients, Calls: *calls,
		})
		if err != nil {
			fatal(err)
		}
		events, mid, final = r.Events, r.MetricsMid, r.MetricsFinal
		fmt.Printf("# run seed=%d virtual=%v events=%d digest=%s\n",
			*seed, r.VirtualElapsed, len(events), r.Digest)
	}

	tls := trace.Correlate(events)
	groups := trace.GroupByRoot(tls)
	// Simulated runs are anchored at the virtual epoch; live rings carry
	// wall-clock stamps, so anchor those at the earliest observed event.
	base := clock.Epoch
	if *live != "" {
		base = earliest(tls)
	}
	printWaterfalls(os.Stdout, base, tls, *verbose)
	printCausalChains(os.Stdout, groups)
	printStreamTable(os.Stdout, tls)
	if final != nil {
		fmt.Println("\n# metrics (final)")
		final.WriteText(os.Stdout)
	}

	if *eventsPath != "" {
		writeJSONFile(*eventsPath, events)
	}
	if *metricsPath != "" && final != nil {
		writeFile(*metricsPath, func(w io.Writer) error { return final.WriteJSON(w) })
	}
	if *chromePath != "" {
		writeFile(*chromePath, func(w io.Writer) error {
			return trace.WriteChromeTrace(w, base, tls)
		})
	}

	if *check {
		var errs []error
		if *live != "" {
			errs = runLiveChecks(tls, groups)
		} else {
			errs = runChecks(tls, mid, final)
		}
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "check FAIL:", e)
			}
			os.Exit(1)
		}
		fmt.Println("# check OK")
	}
}

// fetchLive drains each named ops plane's /trace endpoint and merges
// the rings into one event slice for correlation.
func fetchLive(addrs string) []trace.Event {
	client := &http.Client{Timeout: 10 * time.Second}
	var events []trace.Event
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		resp, err := client.Get("http://" + addr + "/trace")
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fatal(fmt.Errorf("%s/trace: status %d", addr, resp.StatusCode))
		}
		var dump ops.TraceDump
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if err != nil {
			fatal(fmt.Errorf("%s/trace: %w", addr, err))
		}
		fmt.Printf("# live %s node=%s events=%d anomalies=%d snapshots=%d\n",
			addr, dump.Node, len(dump.Events), dump.Anomalies, len(dump.Snapshots))
		events = append(events, dump.Events...)
	}
	return events
}

// earliest returns the first observed stamp across all timelines (or
// the zero time if none — WriteChromeTrace then emits raw offsets).
func earliest(tls []*trace.Timeline) time.Time {
	var base time.Time
	for _, tl := range tls {
		if f := tl.First(); !f.IsZero() && (base.IsZero() || f.Before(base)) {
			base = f
		}
	}
	return base
}

// runLiveChecks gates a live attachment in CI: rings from the attached
// processes must correlate, at least one call must join sender- and
// receiver-side events (proof the merge spans processes when the roles
// live in different ones), and every causal chain must be coherent
// (each member carries its group's root).
func runLiveChecks(tls []*trace.Timeline, groups []*trace.TraceGroup) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if len(tls) == 0 {
		fail("no call timelines correlated from the live rings")
		return errs
	}
	joined := 0
	for _, tl := range tls {
		if !tl.Stamp(trace.StageEnqueued).IsZero() && !tl.Stamp(trace.StageExecuted).IsZero() {
			joined++
		}
	}
	if joined == 0 {
		fail("no call joined sender-side and receiver-side events across the drained rings")
	}
	chained := 0
	for _, g := range groups {
		if len(g.Calls) > 1 {
			chained++
		}
		for _, tl := range g.Calls {
			if tl.Root != g.Root {
				fail("call %012x grouped under root %012x but carries root %012x", tl.TraceID, g.Root, tl.Root)
			}
		}
	}
	if chained == 0 {
		fail("no causal chain spans more than one call (cause propagation not observed)")
	}
	return errs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamscope:", err)
	os.Exit(1)
}

func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func writeJSONFile(path string, v any) {
	writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(v)
	})
}

// printWaterfalls lists each call with per-stage offsets from its
// enqueue instant; -v adds a proportional stage bar. base anchors the
// absolute ENQ@ column (virtual epoch for simulations, first observed
// event for live attachments).
func printWaterfalls(w io.Writer, base time.Time, tls []*trace.Timeline, verbose bool) {
	fmt.Fprintln(w, "\n# timelines (per-call waterfall; stage offsets from enqueue)")
	fmt.Fprintf(w, "%-12s %-22s %4s %9s %7s %7s %7s %7s %7s %9s  %s\n",
		"TRACE", "STREAM", "SEQ", "ENQ@", "SENT", "DLVR", "EXEC", "REPL", "RSLV", "TOTAL", "OUTCOME")
	var maxTotal time.Duration
	for _, tl := range tls {
		if tl.Total() > maxTotal {
			maxTotal = tl.Total()
		}
	}
	for _, tl := range tls {
		enq := tl.Stamp(trace.StageEnqueued)
		fmt.Fprintf(w, "%-12s %-22s %4d %8dus %7s %7s %7s %7s %7s %8dus  %s\n",
			fmt.Sprintf("%012x", tl.TraceID), tl.Stream, tl.Seq,
			enq.Sub(base).Microseconds(),
			offset(tl, trace.StageSent), offset(tl, trace.StageDelivered),
			offset(tl, trace.StageExecuted), offset(tl, trace.StageReplied),
			offset(tl, trace.StageResolved),
			tl.Total().Microseconds(), tl.Outcome)
		if verbose && maxTotal > 0 {
			fmt.Fprintf(w, "%41s %s\n", "", stageBar(tl, maxTotal, 64))
		}
	}
}

// offset formats a stage's delay after enqueue, or "-" if unobserved.
func offset(tl *trace.Timeline, s trace.Stage) string {
	if tl.Stamp(s).IsZero() || tl.Stamp(trace.StageEnqueued).IsZero() {
		return "-"
	}
	return fmt.Sprintf("+%d", tl.Dur(trace.StageEnqueued, s).Microseconds())
}

// stageBar renders the call's stage intervals as a proportional bar:
// one letter per interval (b=batch-wait n=network x=execute r=reply-
// buffer p=reply-network), scaled so the run's slowest call spans width.
func stageBar(tl *trace.Timeline, maxTotal time.Duration, width int) string {
	letters := [...]byte{'b', 'n', 'x', 'r', 'p'}
	var sb strings.Builder
	sb.WriteByte('|')
	prev := trace.StageEnqueued
	for s := trace.StageSent; s < trace.NumStages; s++ {
		if tl.Stamp(s).IsZero() {
			continue
		}
		d := tl.Dur(prev, s)
		n := int(int64(d) * int64(width) / int64(maxTotal))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[s-1])
		}
		sb.WriteByte('|')
		prev = s
	}
	return sb.String()
}

// printCausalChains renders each multi-call causal chain as an indented
// cross-guardian waterfall: every correlated call sharing a root trace
// ID, parents before children, indented by hops from the root. Chains
// of one call (no propagation observed) are omitted.
func printCausalChains(w io.Writer, groups []*trace.TraceGroup) {
	multi := 0
	for _, g := range groups {
		if len(g.Calls) > 1 {
			multi++
		}
	}
	if multi == 0 {
		return
	}
	fmt.Fprintf(w, "\n# causal chains (%d chains with >1 call; indent = hops from the root call)\n", multi)
	for _, g := range groups {
		if len(g.Calls) < 2 {
			continue
		}
		var first, last time.Time
		for _, tl := range g.Calls {
			if f := tl.First(); !f.IsZero() && (first.IsZero() || f.Before(first)) {
				first = f
			}
			if l := tl.Last(); l.After(last) {
				last = l
			}
		}
		fmt.Fprintf(w, "root %012x  calls=%d span=%dus\n",
			g.Root, len(g.Calls), last.Sub(first).Microseconds())
		for _, tl := range g.Calls {
			port := tl.Port
			if port == "" {
				port = "?"
			}
			fmt.Fprintf(w, "  %s%012x %s seq=%d port=%s total=%dus %s\n",
				strings.Repeat("  ", tl.Depth), tl.TraceID, tl.Stream, tl.Seq,
				port, tl.Total().Microseconds(), tl.Outcome)
		}
	}
}

// printStreamTable aggregates timelines per stream: volumes, mean
// stage-interval latencies, and the tail of the end-to-end latency
// distribution (exact order statistics over resolved calls).
func printStreamTable(w io.Writer, tls []*trace.Timeline) {
	type agg struct {
		calls, resolved               int
		total, batch, net, exec, rnet time.Duration
		nb, nn, nx, nr                int
		totals                        []time.Duration
	}
	byStream := map[string]*agg{}
	var order []string
	for _, tl := range tls {
		a := byStream[tl.Stream]
		if a == nil {
			a = &agg{}
			byStream[tl.Stream] = a
			order = append(order, tl.Stream)
		}
		a.calls++
		if !tl.Stamp(trace.StageResolved).IsZero() {
			a.resolved++
			a.total += tl.Total()
			a.totals = append(a.totals, tl.Total())
		}
		if d := tl.Dur(trace.StageEnqueued, trace.StageSent); d > 0 || !tl.Stamp(trace.StageSent).IsZero() {
			a.batch += d
			a.nb++
		}
		if d := tl.Dur(trace.StageSent, trace.StageDelivered); !tl.Stamp(trace.StageDelivered).IsZero() {
			a.net += d
			a.nn++
		}
		if d := tl.Dur(trace.StageDelivered, trace.StageExecuted); !tl.Stamp(trace.StageExecuted).IsZero() {
			a.exec += d
			a.nx++
		}
		if d := tl.Dur(trace.StageReplied, trace.StageResolved); !tl.Stamp(trace.StageResolved).IsZero() {
			a.rnet += d
			a.nr++
		}
	}
	sort.Strings(order)
	fmt.Fprintln(w, "\n# streams (mean stage intervals + end-to-end tail, resolved calls only for total)")
	fmt.Fprintf(w, "%-22s %6s %6s %10s %10s %10s %10s %10s %8s %8s %8s\n",
		"STREAM", "CALLS", "RSLVD", "TOTAL", "BATCH", "NET", "EXEC", "REPLYNET", "P50", "P99", "P999")
	for _, key := range order {
		a := byStream[key]
		sort.Slice(a.totals, func(i, j int) bool { return a.totals[i] < a.totals[j] })
		fmt.Fprintf(w, "%-22s %6d %6d %10s %10s %10s %10s %10s %8s %8s %8s\n",
			key, a.calls, a.resolved,
			mean(a.total, a.resolved), mean(a.batch, a.nb),
			mean(a.net, a.nn), mean(a.exec, a.nx), mean(a.rnet, a.nr),
			pctl(a.totals, 0.50), pctl(a.totals, 0.99), pctl(a.totals, 0.999))
	}
}

func mean(sum time.Duration, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%dus", (sum / time.Duration(n)).Microseconds())
}

// pctl is the nearest-rank quantile of an ascending-sorted sample.
func pctl(sorted []time.Duration, q float64) string {
	if len(sorted) == 0 {
		return "-"
	}
	idx := int(q*float64(len(sorted)) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return fmt.Sprintf("%dus", sorted[idx].Microseconds())
}

// requiredCounters and requiredHistograms are the snapshot keys every
// instrumented run must produce; -check fails if any is missing.
var requiredCounters = []string{
	"guardian_handler_calls_total",
	"simnet_kernel_calls_total",
	"simnet_messages_delivered_total",
	"simnet_messages_sent_total",
	"stream_batches_sent_total",
	"stream_calls_enqueued_total",
	"stream_calls_executed_total",
	"stream_claims_total",
	"stream_replies_total",
	"stream_reply_batches_sent_total",
}

var requiredHistograms = []string{
	"simnet_message_bytes",
	"stream_batch_bytes",
	"stream_batch_calls",
	"stream_claim_wait_ns",
	"stream_reply_batch_bytes",
	"stream_window_calls",
}

// runChecks verifies the run's observable shape: timelines exist and at
// least one call was traced through all six stages; every required
// metric key is present; and every counter and histogram is monotone
// from the mid-run snapshot to the final one.
func runChecks(tls []*trace.Timeline, mid, final *metrics.Snapshot) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if len(tls) == 0 {
		fail("no call timelines correlated")
	}
	full := 0
	for _, tl := range tls {
		complete := true
		for s := trace.StageEnqueued; s < trace.NumStages; s++ {
			if tl.Stamp(s).IsZero() {
				complete = false
				break
			}
		}
		if complete {
			full++
		}
	}
	if len(tls) > 0 && full == 0 {
		fail("no call observed through all %d stages", trace.NumStages)
	}

	if final == nil {
		fail("no final metrics snapshot")
		return errs
	}
	for _, k := range requiredCounters {
		if _, ok := final.Counters[k]; !ok {
			fail("missing counter %q", k)
		}
	}
	for _, k := range requiredHistograms {
		if _, ok := final.Histograms[k]; !ok {
			fail("missing histogram %q", k)
		}
	}
	if mid != nil {
		for k, v := range mid.Counters {
			if fv, ok := final.Counters[k]; ok && fv < v {
				fail("counter %q not monotone: mid=%d final=%d", k, v, fv)
			}
		}
		for k, h := range mid.Histograms {
			if fh, ok := final.Histograms[k]; ok && (fh.Count < h.Count || fh.Sum < h.Sum) {
				fail("histogram %q not monotone: mid count=%d final count=%d", k, h.Count, fh.Count)
			}
		}
	}
	return errs
}
