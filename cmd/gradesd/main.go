// Command gradesd runs the paper's grades system end to end: a grades
// database guardian, a printer guardian, and a client that records a
// batch of grades and prints the students' updated averages, using any of
// the paper's three composition strategies.
//
// Usage:
//
//	gradesd                          # 20 students, coenter composition
//	gradesd -n 100 -mode sequential  # Figure 3-1
//	gradesd -mode forks              # Figure 4-1
//	gradesd -mode coenter            # Figure 4-2
//	gradesd -mode atomic             # coenter with a recording action
//	gradesd -fail-after 5            # inject early recorder death
//
// With -transport=tcp the guardians run as separate OS processes over
// real loopback (or LAN) sockets:
//
//	gradesd -transport=tcp -role servers \
//	    -listen gradesdb=127.0.0.1:7001,printer=127.0.0.1:7002
//	gradesd -transport=tcp -role client \
//	    -connect gradesdb=127.0.0.1:7001,printer=127.0.0.1:7002
//
// -ops=addr mounts the live ops plane (/metrics, /healthz, /trace,
// pprof) in any mode; streamscope -live attaches to it. A client run
// normally exits as soon as the composition completes — add
// -linger=30s to keep its trace ring scrapeable afterwards.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"promises/internal/app/grades"
	"promises/internal/ops"
	"promises/internal/simnet"
	"promises/internal/stream"
	"promises/internal/tcpnet"
)

func main() {
	var (
		n         = flag.Int("n", 20, "number of students")
		mode      = flag.String("mode", "coenter", "composition: sequential | forks | coenter | atomic")
		failAfter = flag.Int("fail-after", 0, "inject recorder death after this many calls (0 = off)")
		delay     = flag.Duration("delay", time.Millisecond, "per-call processing cost at the servers")
		transport = flag.String("transport", "sim", "network backend: sim (one process, simulated) | tcp (real sockets)")
		role      = flag.String("role", "", "tcp only: servers (db+printer) | client")
		listen    = flag.String("listen", "", "tcp servers: name=addr list, e.g. gradesdb=127.0.0.1:7001,printer=127.0.0.1:7002")
		connect   = flag.String("connect", "", "tcp client: name=addr list of server endpoints to dial")
		opsAddr   = flag.String("ops", "", "serve the live ops plane (/metrics /healthz /trace + pprof) on this address")
		linger    = flag.Duration("linger", 0, "keep the process (and its ops plane) up this long after a run completes")
	)
	flag.Parse()

	opts := stream.Options{MaxBatch: 16, MaxBatchDelay: time.Millisecond}
	obs := ops.NewPlane(*opsAddr)
	opts = obs.Instrument(opts)

	switch *transport {
	case "sim":
		runSim(*n, *mode, *failAfter, *delay, opts, obs, *linger)
	case "tcp":
		switch *role {
		case "servers":
			runTCPServers(*listen, *delay, opts, obs)
		case "client":
			runTCPClient(*n, *mode, *failAfter, *connect, opts, obs, *linger)
		default:
			fmt.Fprintf(os.Stderr, "gradesd: -transport=tcp needs -role servers or -role client\n")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "gradesd: unknown transport %q\n", *transport)
		os.Exit(2)
	}
}

// lingerAfterRun keeps a finished client process alive so streamscope
// -live can still drain its trace ring.
func lingerAfterRun(obs *ops.Plane, d time.Duration) {
	if obs == nil || d <= 0 {
		return
	}
	fmt.Printf("lingering %v for live trace scrapes (ops plane stays up)\n", d)
	time.Sleep(d)
}

// runSim is the historical single-process demo on the simulated network.
func runSim(n int, mode string, failAfter int, delay time.Duration, opts stream.Options, obs *ops.Plane, linger time.Duration) {
	cfg := simnet.Config{
		KernelOverhead: 20 * time.Microsecond,
		Propagation:    200 * time.Microsecond,
		PerByte:        10 * time.Nanosecond,
	}
	if obs != nil {
		cfg.Metrics = obs.Registry
	}
	net := simnet.New(cfg)
	defer net.Close()

	db, err := grades.NewDB(net, "gradesdb", opts)
	check(err)
	defer db.G.Close()
	pr, err := grades.NewPrinter(net, "printer", opts)
	check(err)
	defer pr.G.Close()
	client, err := grades.NewClient(net, "client", opts, db.Ref(), pr.Ref())
	check(err)
	defer client.G.Close()
	stopOps, err := obs.Serve("gradesd-sim", db.G.Peer(), pr.G.Peer(), client.G.Peer())
	check(err)
	defer stopOps()

	db.SetDelay(delay)
	pr.SetDelay(delay)
	client.FailRecordingAfter = failAfter

	elapsed, err := runComposition(client, n, mode)
	report(n, mode, elapsed, err)
	for _, line := range pr.Lines() {
		fmt.Println(" ", line)
	}
	st := net.Stats()
	fmt.Printf("network: %d messages sent, %d delivered, %d kernel calls, %d bytes\n",
		st.MessagesSent, st.MessagesDelivered, st.KernelCalls, st.BytesSent)
	lingerAfterRun(obs, linger)
}

// runTCPServers hosts the database and printer guardians, each on its own
// listening TCP endpoint, until interrupted.
func runTCPServers(listen string, delay time.Duration, opts stream.Options, obs *ops.Plane) {
	addrs, err := parseAddrList(listen)
	check(err)
	for _, name := range []string{"gradesdb", "printer"} {
		if addrs[name] == "" {
			check(fmt.Errorf("-listen must name %s=addr", name))
		}
	}

	dbEP, err := tcpnet.Listen("gradesdb", addrs["gradesdb"], tcpnet.Config{})
	check(err)
	defer dbEP.Close()
	prEP, err := tcpnet.Listen("printer", addrs["printer"], tcpnet.Config{})
	check(err)
	defer prEP.Close()

	db, err := grades.NewDBOn(dbEP, opts)
	check(err)
	defer db.G.Close()
	pr, err := grades.NewPrinterOn(prEP, opts)
	check(err)
	defer pr.G.Close()
	db.SetDelay(delay)
	pr.SetDelay(delay)
	stopOps, err := obs.Serve("gradesd-servers", db.G.Peer(), pr.G.Peer())
	check(err)
	defer stopOps()

	fmt.Printf("gradesdb listening on %s, printer on %s (ctrl-c to stop)\n",
		dbEP.Addr(), prEP.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	fmt.Println("printed output:")
	for _, line := range pr.Lines() {
		fmt.Println(" ", line)
	}
	st := dbEP.Stats()
	fmt.Printf("gradesdb transport: %d frames in, %d frames out, %d bytes out, %d writevs\n",
		st.FramesRecv, st.FramesSent, st.BytesSent, st.Writevs)
}

// runTCPClient runs the composition against server guardians living in
// another process, known only by name and address.
func runTCPClient(n int, mode string, failAfter int, connect string, opts stream.Options, obs *ops.Plane, linger time.Duration) {
	routes, err := parseAddrList(connect)
	check(err)
	ep, err := tcpnet.Listen("client", "", tcpnet.Config{Routes: routes})
	check(err)
	defer ep.Close()

	client, err := grades.NewClientOn(ep, opts,
		grades.DBRef("gradesdb"), grades.PrinterRef("printer"))
	check(err)
	defer client.G.Close()
	client.FailRecordingAfter = failAfter
	stopOps, err := obs.Serve("gradesd-client", client.G.Peer())
	check(err)
	defer stopOps()

	elapsed, err := runComposition(client, n, mode)
	report(n, mode, elapsed, err)
	fmt.Println("(printed lines appear in the servers process)")
	st := ep.Stats()
	fmt.Printf("client transport: %d frames out, %d bytes out, %d writevs, %d dials\n",
		st.FramesSent, st.BytesSent, st.Writevs, st.Dials)
	lingerAfterRun(obs, linger)
}

// runComposition executes one of the paper's composition strategies.
func runComposition(client *grades.Client, n int, mode string) (time.Duration, error) {
	load := grades.Workload(n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	var err error
	switch mode {
	case "sequential":
		err = client.RunSequential(ctx, load)
	case "forks":
		err = client.RunForks(ctx, load)
	case "coenter":
		err = client.RunCoenter(ctx, load)
	case "atomic":
		err = client.RunCoenterAtomic(ctx, load)
	default:
		fmt.Fprintf(os.Stderr, "gradesd: unknown mode %q\n", mode)
		os.Exit(2)
	}
	return time.Since(start), err
}

func report(n int, mode string, elapsed time.Duration, err error) {
	if err != nil {
		fmt.Printf("composition terminated: %v (after %v)\n", err, elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("recorded and printed %d grades in %v (%s composition)\n",
			n, elapsed.Round(time.Millisecond), mode)
	}
}

// parseAddrList parses "name=addr,name=addr" into a map.
func parseAddrList(s string) (map[string]string, error) {
	out := make(map[string]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad name=addr entry %q", part)
		}
		out[name] = addr
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gradesd:", err)
		os.Exit(1)
	}
}
