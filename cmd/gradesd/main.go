// Command gradesd runs the paper's grades system end to end: a grades
// database guardian, a printer guardian, and a client that records a
// batch of grades and prints the students' updated averages, using any of
// the paper's three composition strategies.
//
// Usage:
//
//	gradesd                          # 20 students, coenter composition
//	gradesd -n 100 -mode sequential  # Figure 3-1
//	gradesd -mode forks              # Figure 4-1
//	gradesd -mode coenter            # Figure 4-2
//	gradesd -mode atomic             # coenter with a recording action
//	gradesd -fail-after 5            # inject early recorder death
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"promises/internal/app/grades"
	"promises/internal/simnet"
	"promises/internal/stream"
)

func main() {
	var (
		n         = flag.Int("n", 20, "number of students")
		mode      = flag.String("mode", "coenter", "composition: sequential | forks | coenter | atomic")
		failAfter = flag.Int("fail-after", 0, "inject recorder death after this many calls (0 = off)")
		delay     = flag.Duration("delay", time.Millisecond, "per-call processing cost at the servers")
	)
	flag.Parse()

	net := simnet.New(simnet.Config{
		KernelOverhead: 20 * time.Microsecond,
		Propagation:    200 * time.Microsecond,
		PerByte:        10 * time.Nanosecond,
	})
	defer net.Close()
	opts := stream.Options{MaxBatch: 16, MaxBatchDelay: time.Millisecond}

	db, err := grades.NewDB(net, "gradesdb", opts)
	check(err)
	defer db.G.Close()
	pr, err := grades.NewPrinter(net, "printer", opts)
	check(err)
	defer pr.G.Close()
	client, err := grades.NewClient(net, "client", opts, db.Ref(), pr.Ref())
	check(err)
	defer client.G.Close()

	db.SetDelay(*delay)
	pr.SetDelay(*delay)
	client.FailRecordingAfter = *failAfter

	load := grades.Workload(*n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	start := time.Now()
	switch *mode {
	case "sequential":
		err = client.RunSequential(ctx, load)
	case "forks":
		err = client.RunForks(ctx, load)
	case "coenter":
		err = client.RunCoenter(ctx, load)
	case "atomic":
		err = client.RunCoenterAtomic(ctx, load)
	default:
		fmt.Fprintf(os.Stderr, "gradesd: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	if err != nil {
		fmt.Printf("composition terminated: %v (after %v)\n", err, elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("recorded and printed %d grades in %v (%s composition)\n",
			*n, elapsed.Round(time.Millisecond), *mode)
	}
	for _, line := range pr.Lines() {
		fmt.Println(" ", line)
	}
	st := net.Stats()
	fmt.Printf("network: %d messages sent, %d delivered, %d kernel calls, %d bytes\n",
		st.MessagesSent, st.MessagesDelivered, st.KernelCalls, st.BytesSent)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gradesd:", err)
		os.Exit(1)
	}
}
