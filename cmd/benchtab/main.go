// Command benchtab regenerates the experiment tables (E1–E10) that
// reproduce the paper's performance and structure claims. See DESIGN.md
// for the experiment index and EXPERIMENTS.md for paper-vs-measured
// discussion.
//
// Usage:
//
//	benchtab              # run every experiment at full scale
//	benchtab -exp e4      # run one experiment
//	benchtab -exp e1,e2   # run several
//	benchtab -quick       # smoke-test scale (sub-second per experiment)
//	benchtab -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"promises/internal/bench"
	"promises/internal/ops"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id(s): e1..e10, comma-separated, or 'all'")
		quick    = flag.Bool("quick", false, "run at smoke-test scale")
		list     = flag.Bool("list", false, "list experiments and exit")
		metrics  = flag.Bool("metrics", false, "append a metrics-registry snapshot after the tables")
		virtual   = flag.Bool("virtual", false, "run on a virtual clock: modeled costs elapse instantly and tables are deterministic (E6, E13, and A3 need the real clock)")
		parallel  = flag.Bool("parallel", false, "run only the E12 multicore sharding sweep (GOMAXPROCS x shard counts) at full scale")
		transport = flag.String("transport", "", "run only the transport-backend comparisons: 'tcp' selects E13 and E15 (simnet vs real loopback sockets)")
		opsAddr   = flag.String("ops", "", "serve the live ops plane on this address while experiments run (implies -metrics)")
	)
	flag.Parse()

	if *opsAddr != "" {
		// The ops plane watches the shared experiment registry live, so
		// a sweep in progress can be scraped mid-run.
		*metrics = true
		srv, err := ops.Serve(*opsAddr, ops.Config{Node: "benchtab", Metrics: bench.EnableMetrics()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ops plane on http://%s (/metrics /healthz /trace /debug/pprof)\n", srv.Addr())
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.Ablations() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *parallel {
		*exp = "E12"
	}
	switch *transport {
	case "":
	case "tcp":
		*exp = "E13,E15"
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown transport %q (only 'tcp')\n", *transport)
		os.Exit(2)
	}
	switch *exp {
	case "all", "":
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
		for _, e := range bench.Ablations() {
			ids = append(ids, e.ID)
		}
	default:
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.ToUpper(strings.TrimSpace(id)))
		}
	}

	if *metrics {
		bench.EnableMetrics()
	}
	runTables := func() {
		for _, id := range ids {
			e, ok := bench.Find(id)
			if !ok {
				e, ok = bench.FindAblation(id)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			run := e.Run
			if *quick {
				run = e.Quick
			}
			run().Print(os.Stdout)
		}
	}
	if *virtual {
		bench.WithVirtualTime(runTables)
	} else {
		runTables()
	}
	if *metrics {
		fmt.Println("# metrics (accumulated across the experiments above)")
		bench.EnableMetrics().Snapshot().WriteText(os.Stdout)
	}
}
