// Command mailer demonstrates the §2.1 mailer guardian: two clients make
// interleaved stream calls; calls on one client's stream execute in call
// order, while the two clients' calls run concurrently at the guardian.
//
// Usage:
//
//	mailer            # the scripted two-client scenario
//	mailer -msgs 10   # more traffic per client
//
// With -transport=tcp the mailer guardian runs in its own OS process on a
// real socket and the clients dial it from another:
//
//	mailer -transport=tcp -role mailer  -listen 127.0.0.1:7003
//	mailer -transport=tcp -role clients -connect mailer=127.0.0.1:7003
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"promises/internal/app/mailer"
	"promises/internal/guardian"
	"promises/internal/simnet"
	"promises/internal/stream"
	"promises/internal/tcpnet"
)

func main() {
	var (
		msgs    = flag.Int("msgs", 3, "messages each client sends before reading")
		trans   = flag.String("transport", "sim", "network backend: sim (one process, simulated) | tcp (real sockets)")
		role    = flag.String("role", "", "tcp only: mailer | clients")
		listen  = flag.String("listen", "", "tcp mailer: address to listen on, e.g. 127.0.0.1:7003")
		connect = flag.String("connect", "", "tcp clients: mailer=addr to dial")
	)
	flag.Parse()

	switch *trans {
	case "sim":
		runSim(*msgs)
	case "tcp":
		switch *role {
		case "mailer":
			runTCPMailer(*listen)
		case "clients":
			runTCPClients(*msgs, *connect)
		default:
			fmt.Fprintf(os.Stderr, "mailer: -transport=tcp needs -role mailer or -role clients\n")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "mailer: unknown transport %q\n", *trans)
		os.Exit(2)
	}
}

func streamOpts() stream.Options {
	return stream.Options{MaxBatch: 8, MaxBatchDelay: time.Millisecond}
}

// runSim is the historical single-process demo on the simulated network.
func runSim(msgs int) {
	net := simnet.New(simnet.Config{
		KernelOverhead: 20 * time.Microsecond,
		Propagation:    200 * time.Microsecond,
	})
	defer net.Close()

	m, err := mailer.New(net, "mailer", streamOpts())
	check(err)
	defer m.G.Close()
	home, err := guardian.New(net, "home", streamOpts())
	check(err)
	defer home.Close()

	runScenario(home, "mailer", msgs)
}

// runTCPMailer hosts the mailer guardian on a listening TCP endpoint
// until interrupted.
func runTCPMailer(listen string) {
	if listen == "" {
		check(fmt.Errorf("-role mailer needs -listen addr"))
	}
	ep, err := tcpnet.Listen("mailer", listen, tcpnet.Config{})
	check(err)
	defer ep.Close()
	m, err := mailer.NewOn(ep, streamOpts())
	check(err)
	defer m.G.Close()

	fmt.Printf("mailer listening on %s (ctrl-c to stop)\n", ep.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := ep.Stats()
	fmt.Printf("mailer transport: %d frames in, %d frames out, %d bytes out, %d writevs\n",
		st.FramesRecv, st.FramesSent, st.BytesSent, st.Writevs)
}

// runTCPClients runs the two-client scenario against a mailer guardian
// in another process.
func runTCPClients(msgs int, connect string) {
	routes := make(map[string]string)
	for _, part := range strings.Split(connect, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			check(fmt.Errorf("-connect needs name=addr entries, got %q", part))
		}
		routes[name] = addr
	}
	if routes["mailer"] == "" {
		check(fmt.Errorf("-connect must name mailer=addr"))
	}

	ep, err := tcpnet.Listen("home", "", tcpnet.Config{Routes: routes})
	check(err)
	defer ep.Close()
	home, err := guardian.NewOn(ep, streamOpts())
	check(err)
	defer home.Close()

	runScenario(home, "mailer", msgs)
}

// runScenario is the paper's §2.1 script, independent of which transport
// the home guardian reaches the mailer through.
func runScenario(home *guardian.Guardian, mailerNode string, msgs int) {
	ctx := context.Background()
	c1 := mailer.NewClientFor(home, "c1", mailerNode)
	c2 := mailer.NewClientFor(home, "c2", mailerNode)
	check(c1.Register(ctx, "ann"))
	check(c2.Register(ctx, "bob"))

	// Each client streams sends to the *other* user, then reads its own
	// mail on the same stream — without waiting between calls. The stream
	// guarantees each client's read runs after its sends.
	for i := 0; i < msgs; i++ {
		_, err := c1.SendMail("bob", fmt.Sprintf("from ann #%d", i+1))
		check(err)
		_, err = c2.SendMail("ann", fmt.Sprintf("from bob #%d", i+1))
		check(err)
	}
	check(c1.Synch(ctx))
	check(c2.Synch(ctx))

	annMail, err := c1.ReadMailRPC(ctx, "ann")
	check(err)
	bobMail, err := c2.ReadMailRPC(ctx, "bob")
	check(err)

	fmt.Println("ann's mailbox:")
	for _, msg := range annMail {
		fmt.Println("  ", msg)
	}
	fmt.Println("bob's mailbox:")
	for _, msg := range bobMail {
		fmt.Println("  ", msg)
	}

	// The exception path: reading an unknown user's mail.
	if _, err := c1.ReadMailRPC(ctx, "eve"); err != nil {
		fmt.Println("reading eve's mail:", err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailer:", err)
		os.Exit(1)
	}
}
