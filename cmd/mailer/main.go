// Command mailer demonstrates the §2.1 mailer guardian: two clients make
// interleaved stream calls; calls on one client's stream execute in call
// order, while the two clients' calls run concurrently at the guardian.
//
// Usage:
//
//	mailer            # the scripted two-client scenario
//	mailer -msgs 10   # more traffic per client
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"promises/internal/app/mailer"
	"promises/internal/guardian"
	"promises/internal/simnet"
	"promises/internal/stream"
)

func main() {
	msgs := flag.Int("msgs", 3, "messages each client sends before reading")
	flag.Parse()

	net := simnet.New(simnet.Config{
		KernelOverhead: 20 * time.Microsecond,
		Propagation:    200 * time.Microsecond,
	})
	defer net.Close()
	opts := stream.Options{MaxBatch: 8, MaxBatchDelay: time.Millisecond}

	m, err := mailer.New(net, "mailer", opts)
	check(err)
	defer m.G.Close()
	home, err := guardian.New(net, "home", opts)
	check(err)
	defer home.Close()

	ctx := context.Background()
	c1 := mailer.NewClient(home, "c1", m)
	c2 := mailer.NewClient(home, "c2", m)
	check(c1.Register(ctx, "ann"))
	check(c2.Register(ctx, "bob"))

	// Each client streams sends to the *other* user, then reads its own
	// mail on the same stream — without waiting between calls. The stream
	// guarantees each client's read runs after its sends.
	for i := 0; i < *msgs; i++ {
		_, err := c1.SendMail("bob", fmt.Sprintf("from ann #%d", i+1))
		check(err)
		_, err = c2.SendMail("ann", fmt.Sprintf("from bob #%d", i+1))
		check(err)
	}
	check(c1.Synch(ctx))
	check(c2.Synch(ctx))

	annMail, err := c1.ReadMailRPC(ctx, "ann")
	check(err)
	bobMail, err := c2.ReadMailRPC(ctx, "bob")
	check(err)

	fmt.Println("ann's mailbox:")
	for _, msg := range annMail {
		fmt.Println("  ", msg)
	}
	fmt.Println("bob's mailbox:")
	for _, msg := range bobMail {
		fmt.Println("  ", msg)
	}

	// The exception path: reading an unknown user's mail.
	if _, err := c1.ReadMailRPC(ctx, "eve"); err != nil {
		fmt.Println("reading eve's mail:", err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailer:", err)
		os.Exit(1)
	}
}
