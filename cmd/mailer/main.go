// Command mailer demonstrates the §2.1 mailer guardian: two clients make
// interleaved stream calls; calls on one client's stream execute in call
// order, while the two clients' calls run concurrently at the guardian.
//
// Usage:
//
//	mailer            # the scripted two-client scenario
//	mailer -msgs 10   # more traffic per client
//
// With -transport=tcp the mailer guardian runs in its own OS process on a
// real socket and the clients dial it from another:
//
//	mailer -transport=tcp -role mailer  -listen 127.0.0.1:7003
//	mailer -transport=tcp -role clients -connect mailer=127.0.0.1:7003
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"promises/internal/app/mailer"
	"promises/internal/guardian"
	"promises/internal/ops"
	"promises/internal/simnet"
	"promises/internal/stream"
	"promises/internal/tcpnet"
	"promises/internal/trace"
)

func main() {
	var (
		msgs    = flag.Int("msgs", 3, "messages each client sends before reading")
		trans   = flag.String("transport", "sim", "network backend: sim (one process, simulated) | tcp (real sockets)")
		role    = flag.String("role", "", "tcp only: mailer | clients")
		listen  = flag.String("listen", "", "tcp mailer: address to listen on, e.g. 127.0.0.1:7003")
		connect = flag.String("connect", "", "tcp clients: mailer=addr to dial")
		opsAddr = flag.String("ops", "", "serve the live ops plane (/metrics /healthz /trace + pprof) on this address")
		linger  = flag.Duration("linger", 0, "keep the process (and its ops plane) up this long after the scenario completes")
	)
	flag.Parse()
	obs := ops.NewPlane(*opsAddr)

	switch *trans {
	case "sim":
		runSim(*msgs, obs, *linger)
	case "tcp":
		switch *role {
		case "mailer":
			runTCPMailer(*listen, obs)
		case "clients":
			runTCPClients(*msgs, *connect, obs, *linger)
		default:
			fmt.Fprintf(os.Stderr, "mailer: -transport=tcp needs -role mailer or -role clients\n")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "mailer: unknown transport %q\n", *trans)
		os.Exit(2)
	}
}

func streamOpts() stream.Options {
	return stream.Options{MaxBatch: 8, MaxBatchDelay: time.Millisecond}
}

// runSim is the historical single-process demo on the simulated network.
func runSim(msgs int, obs *ops.Plane, linger time.Duration) {
	cfg := simnet.Config{
		KernelOverhead: 20 * time.Microsecond,
		Propagation:    200 * time.Microsecond,
	}
	if obs != nil {
		cfg.Metrics = obs.Registry
	}
	net := simnet.New(cfg)
	defer net.Close()

	m, err := mailer.New(net, "mailer", obs.Instrument(streamOpts()))
	check(err)
	defer m.G.Close()
	home, err := guardian.New(net, "home", obs.Instrument(streamOpts()))
	check(err)
	defer home.Close()
	stopOps, err := obs.Serve("mailer-sim", m.G.Peer(), home.Peer())
	check(err)
	defer stopOps()

	runScenario(home, "mailer", msgs)
	lingerAfterRun(obs, linger)
}

// lingerAfterRun keeps a finished client process alive so streamscope
// -live can still drain its trace ring.
func lingerAfterRun(obs *ops.Plane, d time.Duration) {
	if obs == nil || d <= 0 {
		return
	}
	fmt.Printf("lingering %v for live trace scrapes (ops plane stays up)\n", d)
	time.Sleep(d)
}

// runTCPMailer hosts the mailer guardian on a listening TCP endpoint
// until interrupted.
func runTCPMailer(listen string, obs *ops.Plane) {
	if listen == "" {
		check(fmt.Errorf("-role mailer needs -listen addr"))
	}
	ep, err := tcpnet.Listen("mailer", listen, tcpnet.Config{})
	check(err)
	defer ep.Close()
	m, err := mailer.NewOn(ep, obs.Instrument(streamOpts()))
	check(err)
	defer m.G.Close()
	stopOps, err := obs.Serve("mailer", m.G.Peer())
	check(err)
	defer stopOps()

	fmt.Printf("mailer listening on %s (ctrl-c to stop)\n", ep.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := ep.Stats()
	fmt.Printf("mailer transport: %d frames in, %d frames out, %d bytes out, %d writevs\n",
		st.FramesRecv, st.FramesSent, st.BytesSent, st.Writevs)
}

// runTCPClients runs the two-client scenario against a mailer guardian
// in another process.
func runTCPClients(msgs int, connect string, obs *ops.Plane, linger time.Duration) {
	routes := make(map[string]string)
	for _, part := range strings.Split(connect, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			check(fmt.Errorf("-connect needs name=addr entries, got %q", part))
		}
		routes[name] = addr
	}
	if routes["mailer"] == "" {
		check(fmt.Errorf("-connect must name mailer=addr"))
	}

	ep, err := tcpnet.Listen("home", "", tcpnet.Config{Routes: routes})
	check(err)
	defer ep.Close()
	home, err := guardian.NewOn(ep, obs.Instrument(streamOpts()))
	check(err)
	defer home.Close()
	stopOps, err := obs.Serve("mailer-clients", home.Peer())
	check(err)
	defer stopOps()

	runScenario(home, "mailer", msgs)
	lingerAfterRun(obs, linger)
}

// runScenario is the paper's §2.1 script, independent of which transport
// the home guardian reaches the mailer through.
func runScenario(home *guardian.Guardian, mailerNode string, msgs int) {
	ctx := context.Background()
	c1 := mailer.NewClientFor(home, "c1", mailerNode)
	c2 := mailer.NewClientFor(home, "c2", mailerNode)
	// Each client's calls share one root cause, so a live trace scrape
	// groups its whole send/read conversation under a single chain.
	c1.SetCause(trace.RootCause("home/c1", 1))
	c2.SetCause(trace.RootCause("home/c2", 1))
	check(c1.Register(ctx, "ann"))
	check(c2.Register(ctx, "bob"))

	// Each client streams sends to the *other* user, then reads its own
	// mail on the same stream — without waiting between calls. The stream
	// guarantees each client's read runs after its sends.
	for i := 0; i < msgs; i++ {
		_, err := c1.SendMail("bob", fmt.Sprintf("from ann #%d", i+1))
		check(err)
		_, err = c2.SendMail("ann", fmt.Sprintf("from bob #%d", i+1))
		check(err)
	}
	check(c1.Synch(ctx))
	check(c2.Synch(ctx))

	annMail, err := c1.ReadMailRPC(ctx, "ann")
	check(err)
	bobMail, err := c2.ReadMailRPC(ctx, "bob")
	check(err)

	fmt.Println("ann's mailbox:")
	for _, msg := range annMail {
		fmt.Println("  ", msg)
	}
	fmt.Println("bob's mailbox:")
	for _, msg := range bobMail {
		fmt.Println("  ", msg)
	}

	// The exception path: reading an unknown user's mail.
	if _, err := c1.ReadMailRPC(ctx, "eve"); err != nil {
		fmt.Println("reading eve's mail:", err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mailer:", err)
		os.Exit(1)
	}
}
