// Command simtrace runs one seeded deterministic simulation (see
// internal/simtest) and prints its transcript digest. The same seed always
// prints the same digest — and with -v, the same transcript byte for byte —
// so a fault schedule that exposed a bug can be replayed exactly:
//
//	simtrace -seed 42            # digest + summary
//	simtrace -seed 42 -v         # plus the fault script and full transcript
//	simtrace -seed 42 -calls 32  # a longer run
package main

import (
	"flag"
	"fmt"
	"os"

	"promises/internal/simtest"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "script seed; same seed, same transcript")
		servers = flag.Int("servers", 2, "server guardians")
		clients = flag.Int("clients", 2, "client guardians")
		calls   = flag.Int("calls", 8, "calls per client")
		flow    = flag.Bool("flow", false, "enable adaptive batching and credit flow control")
		verbose = flag.Bool("v", false, "print the fault script and full transcript")
	)
	flag.Parse()

	r, err := simtest.Run(simtest.Options{
		Seed: *seed, Servers: *servers, Clients: *clients, Calls: *calls,
		FlowControl: *flow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println("# script")
		for _, line := range r.Script {
			fmt.Println(line)
		}
		fmt.Println("# transcript")
		fmt.Print(r.Transcript)
	}
	fmt.Printf("seed=%d events+outcomes=%d virtual=%v digest=%s\n",
		*seed, countLines(r.Transcript), r.VirtualElapsed, r.Digest)
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
