// Package promises_test holds the testing.B benchmarks, one per
// experiment E1–E10 (see DESIGN.md for the experiment index and
// cmd/benchtab for the full-sweep table regenerator). Each benchmark
// exercises the same code path as its experiment at a fixed operating
// point, so `go test -bench=.` doubles as a regression check on the
// claims' direction.
package promises_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"promises/internal/app/cascade"
	"promises/internal/app/grades"
	"promises/internal/bench"
	"promises/internal/futures"
	"promises/internal/guardian"
	"promises/internal/promise"
	"promises/internal/rpcbase"
	"promises/internal/simnet"
	"promises/internal/stream"
)

var bg = context.Background()

// benchCost is a scaled-down network cost model so auto-tuned b.N stays
// reasonable while the kernel-overhead/propagation structure is retained.
func benchCost() simnet.Config {
	return simnet.Config{
		KernelOverhead: 5 * time.Microsecond,
		Propagation:    40 * time.Microsecond,
		PerByte:        5 * time.Nanosecond,
	}
}

func benchOpts() stream.Options {
	return stream.Options{MaxBatch: 16, MaxBatchDelay: 200 * time.Microsecond}
}

// echoWorld builds the standard guardian pair for transport benchmarks.
type echoWorld struct {
	net    *simnet.Network
	server *guardian.Guardian
	client *guardian.Guardian
	echo   guardian.Ref
}

func newEchoWorld(b *testing.B) *echoWorld {
	b.Helper()
	n := simnet.New(benchCost())
	server := guardian.MustNew(n, "server", benchOpts())
	client := guardian.MustNew(n, "client", benchOpts())
	echo := server.AddHandler("echo", func(call *guardian.Call) ([]any, error) {
		return call.Args, nil
	})
	server.AddHandler("note", func(*guardian.Call) ([]any, error) { return nil, nil })
	b.Cleanup(func() {
		client.Close()
		server.Close()
		n.Close()
	})
	return &echoWorld{net: n, server: server, client: client, echo: echo}
}

// BenchmarkE1_RPCvsStream: per-call cost of plain RPC vs pipelined stream
// calls (claim window 64 deep).
func BenchmarkE1_RPCvsStream(b *testing.B) {
	b.Run("rpc", func(b *testing.B) {
		n := simnet.New(benchCost())
		srv := rpcbase.NewServer(n.MustAddNode("server"))
		srv.Handle("echo", func(args []byte) stream.Outcome {
			return stream.NormalOutcome(args)
		})
		cli := rpcbase.NewClient(n.MustAddNode("client"), rpcbase.Config{})
		b.Cleanup(func() { cli.Close(); srv.Close(); n.Close() })
		arg := []byte("0123456789abcdef")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Call(bg, "server", "echo", arg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		w := newEchoWorld(b)
		s := w.echo.Stream(w.client.Agent("bench"))
		const window = 64
		ps := make([]*promise.Promise[[]byte], 0, window)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := promise.Call(s, "echo", promise.Bytes, []byte("0123456789abcdef"))
			if err != nil {
				b.Fatal(err)
			}
			ps = append(ps, p)
			if len(ps) == window {
				for _, p := range ps {
					if _, err := p.Claim(bg); err != nil {
						b.Fatal(err)
					}
				}
				ps = ps[:0]
			}
		}
		for _, p := range ps {
			if _, err := p.Claim(bg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2_Batching: per-call cost at different batch limits.
func BenchmarkE2_Batching(b *testing.B) {
	for _, batch := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("maxbatch=%d", batch), func(b *testing.B) {
			n := simnet.New(benchCost())
			opts := benchOpts()
			opts.MaxBatch = batch
			server := guardian.MustNew(n, "server", opts)
			client := guardian.MustNew(n, "client", opts)
			echo := server.AddHandler("echo", func(call *guardian.Call) ([]any, error) {
				return call.Args, nil
			})
			b.Cleanup(func() { client.Close(); server.Close(); n.Close() })
			s := echo.Stream(client.Agent("bench"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := promise.Call(s, "echo", promise.Bytes, []byte("x")); err != nil {
					b.Fatal(err)
				}
				if (i+1)%256 == 0 {
					if err := s.Synch(bg); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := s.Synch(bg); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := n.Stats()
			b.ReportMetric(float64(st.KernelCalls)/float64(b.N), "kernelcalls/op")
		})
	}
}

// BenchmarkE3_CallModes: per-op cost of rpc vs stream-call vs send.
func BenchmarkE3_CallModes(b *testing.B) {
	b.Run("rpc", func(b *testing.B) {
		w := newEchoWorld(b)
		s := w.echo.Stream(w.client.Agent("bench"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := promise.RPC(bg, s, "note", promise.None); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("call", func(b *testing.B) {
		w := newEchoWorld(b)
		s := w.echo.Stream(w.client.Agent("bench"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := promise.Call(s, "echo", promise.Bytes, []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Synch(bg); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("send", func(b *testing.B) {
		w := newEchoWorld(b)
		s := w.echo.Stream(w.client.Agent("bench"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := promise.Send(s, "note", []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Synch(bg); err != nil {
			b.Fatal(err)
		}
	})
}

// gradesBench builds a grades world with light costs and returns the
// client.
func gradesBench(b *testing.B) *grades.Client {
	b.Helper()
	n := simnet.New(benchCost())
	db, err := grades.NewDB(n, "gradesdb", benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	pr, err := grades.NewPrinter(n, "printer", benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	cl, err := grades.NewClient(n, "client", benchOpts(), db.Ref(), pr.Ref())
	if err != nil {
		b.Fatal(err)
	}
	db.SetDelay(50 * time.Microsecond)
	pr.SetDelay(50 * time.Microsecond)
	cl.ProduceCost = 50 * time.Microsecond
	b.Cleanup(func() {
		cl.G.Close()
		db.G.Close()
		pr.G.Close()
		n.Close()
	})
	return cl
}

// BenchmarkE4_Composition: one full grades run (30 students) per op, for
// each composition strategy.
func BenchmarkE4_Composition(b *testing.B) {
	load := grades.Workload(30)
	for name, f := range map[string]func(*grades.Client, context.Context, []grades.SInfo) error{
		"sequential": (*grades.Client).RunSequential,
		"forks":      (*grades.Client).RunForks,
		"coenter":    (*grades.Client).RunCoenter,
	} {
		b.Run(name, func(b *testing.B) {
			cl := gradesBench(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f(cl, bg, load); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// cascadeBench builds a cascade world and returns the client.
func cascadeBench(b *testing.B, filter time.Duration) *cascade.Client {
	b.Helper()
	n := simnet.New(benchCost())
	src, err := cascade.NewSource(n, "source", benchOpts(), 0)
	if err != nil {
		b.Fatal(err)
	}
	cmp, err := cascade.NewCompute(n, "compute", benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	snk, err := cascade.NewSink(n, "sink", benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cascade.NewClient(n, "client", benchOpts(), src.Ref(), cmp.Ref(), snk.Ref())
	if err != nil {
		b.Fatal(err)
	}
	src.SetDelay(50 * time.Microsecond)
	cmp.SetDelay(50 * time.Microsecond)
	snk.SetDelay(50 * time.Microsecond)
	cl.FilterCost = filter
	b.Cleanup(func() {
		cl.G.Close()
		src.G.Close()
		cmp.G.Close()
		snk.G.Close()
		n.Close()
	})
	return cl
}

// BenchmarkE5_Cascade: one 32-item cascade run per op, sequential vs
// per-stream.
func BenchmarkE5_Cascade(b *testing.B) {
	for name, f := range map[string]func(*cascade.Client, context.Context, int) error{
		"sequential": (*cascade.Client).RunSequential,
		"per-stream": (*cascade.Client).RunPerStream,
	} {
		b.Run(name, func(b *testing.B) {
			cl := cascadeBench(b, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f(cl, bg, 32); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_PromiseVsFuture: per-access cost of the placeholder
// designs.
func BenchmarkE6_PromiseVsFuture(b *testing.B) {
	b.Run("typed-direct", func(b *testing.B) {
		p := promise.Resolved(1.5)
		v, err := p.MustClaim()
		if err != nil {
			b.Fatal(err)
		}
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += v
		}
		_ = sink
	})
	b.Run("promise-reclaim", func(b *testing.B) {
		p := promise.Resolved(1.5)
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _, _ := p.TryClaim()
			sink += v
		}
		_ = sink
	})
	b.Run("future-touch", func(b *testing.B) {
		f := futures.New(func() any { return 1.5 })
		futures.Touch(f)
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += futures.Touch(f).(float64)
		}
		_ = sink
	})
	b.Run("future-arith", func(b *testing.B) {
		f := futures.New(func() any { return 1.5 })
		futures.Touch(f)
		acc := any(0.0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc = futures.Add(acc, f)
		}
		_ = acc
	})
}

// BenchmarkE7_BreakHandling: time for the coenter composition to
// terminate after the recorder dies mid-run.
func BenchmarkE7_BreakHandling(b *testing.B) {
	load := grades.Workload(16)
	b.Run("coenter-terminate", func(b *testing.B) {
		cl := gradesBench(b)
		cl.FailRecordingAfter = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.RunCoenter(bg, load); err == nil {
				b.Fatal("expected injected failure")
			}
		}
	})
	b.Run("forks-fixed-terminate", func(b *testing.B) {
		cl := gradesBench(b)
		cl.FailRecordingAfter = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.RunForks(bg, load); err == nil {
				b.Fatal("expected injected failure")
			}
		}
	})
}

// BenchmarkE8_PerStreamVsPerItem: 32 items with a 100µs filter.
func BenchmarkE8_PerStreamVsPerItem(b *testing.B) {
	for name, f := range map[string]func(*cascade.Client, context.Context, int) error{
		"per-stream": (*cascade.Client).RunPerStream,
		"per-item":   (*cascade.Client).RunPerItem,
	} {
		b.Run(name, func(b *testing.B) {
			cl := cascadeBench(b, 100*time.Microsecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f(cl, bg, 32); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_LossRecovery: per-call cost of pipelined stream calls at
// increasing loss rates.
func BenchmarkE9_LossRecovery(b *testing.B) {
	for _, loss := range []float64{0, 0.05} {
		b.Run(fmt.Sprintf("loss=%.2f", loss), func(b *testing.B) {
			cfg := benchCost()
			cfg.LossRate = loss
			cfg.Seed = 1988
			n := simnet.New(cfg)
			opts := benchOpts()
			opts.RTO = 2 * time.Millisecond
			opts.MaxRetries = 100
			server := guardian.MustNew(n, "server", opts)
			client := guardian.MustNew(n, "client", opts)
			echo := server.AddHandler("echo", func(call *guardian.Call) ([]any, error) {
				return call.Args, nil
			})
			b.Cleanup(func() { client.Close(); server.Close(); n.Close() })
			s := echo.Stream(client.Agent("bench"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := promise.Call(s, "echo", promise.Bytes, []byte("x")); err != nil {
					b.Fatal(err)
				}
				if (i+1)%128 == 0 {
					if err := s.Synch(bg); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := s.Synch(bg); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE10_SendRecv: per-call cost, promises vs user-matched
// send/receive.
func BenchmarkE10_SendRecv(b *testing.B) {
	b.Run("promises", func(b *testing.B) {
		w := newEchoWorld(b)
		s := w.echo.Stream(w.client.Agent("bench"))
		const window = 64
		ps := make([]*promise.Promise[[]byte], 0, window)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := promise.Call(s, "echo", promise.Bytes, []byte("x"))
			if err != nil {
				b.Fatal(err)
			}
			ps = append(ps, p)
			if len(ps) == window {
				for _, p := range ps {
					if _, err := p.Claim(bg); err != nil {
						b.Fatal(err)
					}
				}
				ps = ps[:0]
			}
		}
		for _, p := range ps {
			if _, err := p.Claim(bg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sendrecv", func(b *testing.B) {
		n := simnet.New(benchCost())
		srv := rpcbase.NewServer(n.MustAddNode("server"))
		srv.Handle("echo", func(args []byte) stream.Outcome {
			return stream.NormalOutcome(args)
		})
		cli := rpcbase.NewClient(n.MustAddNode("client"), rpcbase.Config{})
		b.Cleanup(func() { cli.Close(); srv.Close(); n.Close() })
		m := rpcbase.NewMatcher()
		const window = 64
		outstanding := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, err := cli.SendAsync("server", "echo", []byte("x"))
			if err != nil {
				b.Fatal(err)
			}
			m.Expect(id, "")
			outstanding++
			if outstanding == window {
				for outstanding > 0 {
					r, err := cli.RecvReply(bg)
					if err != nil {
						b.Fatal(err)
					}
					if _, ok := m.Match(r); ok {
						outstanding--
					}
				}
			}
		}
		for outstanding > 0 {
			r, err := cli.RecvReply(bg)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := m.Match(r); ok {
				outstanding--
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(m.Ops())/float64(b.N), "matchops/op")
	})
}

// quickTableCheck ensures the table regenerators stay runnable from the
// root test target too.
func TestBenchTablesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep")
	}
	// Virtual time: the modeled network costs elapse instantly, so the
	// sweep checks the regenerators without real waiting.
	bench.WithVirtualTime(func() {
		for _, e := range bench.Experiments() {
			if tab := e.Quick(); len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
		}
	})
}
