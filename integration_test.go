package promises_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"promises/internal/app/grades"
	"promises/internal/clock"
	"promises/internal/coenter"
	"promises/internal/compose"
	"promises/internal/exception"
	"promises/internal/guardian"
	"promises/internal/handlertype"
	"promises/internal/pqueue"
	"promises/internal/promise"
	"promises/internal/simnet"
	"promises/internal/stream"
	"promises/internal/wire"
)

// These integration tests exercise the system across module boundaries:
// user codecs through guardian calls, crash/recovery during compositions,
// lossy networks under full applications, and the compose construct over
// real streams.

func integOpts() stream.Options {
	return stream.Options{MaxBatch: 8, MaxBatchDelay: time.Millisecond,
		RTO: 8 * time.Millisecond, MaxRetries: 6}
}

// gradeRecord is a user-defined abstract type transmitted by value via a
// user-provided codec (§3: "when an argument or result is an object
// belonging to some abstract type, encoding and decoding are done by
// user-provided code, which may contain errors").
type gradeRecord struct {
	Student string
	Grade   float64
}

type gradeCodec struct {
	failEncode bool
	failDecode bool
}

func (c *gradeCodec) TypeName() string { return "test.gradeRecord" }

func (c *gradeCodec) Encode(v any) ([]byte, error) {
	if c.failEncode {
		return nil, errors.New("injected encode failure")
	}
	r := v.(gradeRecord)
	return []byte(fmt.Sprintf("%s|%g", r.Student, r.Grade)), nil
}

func (c *gradeCodec) Decode(b []byte) (any, error) {
	if c.failDecode {
		return nil, errors.New("injected decode failure")
	}
	var r gradeRecord
	if _, err := fmt.Sscanf(string(b), "%s", &r.Student); err != nil {
		return nil, err
	}
	for i := range b {
		if b[i] == '|' {
			r.Student = string(b[:i])
			if _, err := fmt.Sscanf(string(b[i+1:]), "%g", &r.Grade); err != nil {
				return nil, err
			}
			return r, nil
		}
	}
	return nil, errors.New("malformed gradeRecord")
}

func TestIntegrationUserCodecRoundTrip(t *testing.T) {
	codec := &gradeCodec{}
	wire.Register(gradeRecord{}, codec)

	net := simnet.New(simnet.Config{})
	defer net.Close()
	server := guardian.MustNew(net, "server", integOpts())
	defer server.Close()
	client := guardian.MustNew(net, "client", integOpts())
	defer client.Close()

	ref := server.AddHandler("describe", func(call *guardian.Call) ([]any, error) {
		r, ok := call.Args[0].(gradeRecord)
		if !ok {
			return nil, exception.Failuref("got %T", call.Args[0])
		}
		return []any{fmt.Sprintf("%s scored %.0f", r.Student, r.Grade)}, nil
	})
	s := ref.Stream(client.Agent("a"))
	v, err := promise.RPC(context.Background(), s, ref.Port, promise.String,
		gradeRecord{Student: "ann", Grade: 91})
	if err != nil || v != "ann scored 91" {
		t.Fatalf("RPC = %q, %v", v, err)
	}
}

func TestIntegrationUserCodecEncodeFailureAtCaller(t *testing.T) {
	codec := &gradeCodec{failEncode: true}
	wire.Register(gradeRecord{}, codec)
	defer wire.Register(gradeRecord{}, &gradeCodec{})

	net := simnet.New(simnet.Config{})
	defer net.Close()
	client := guardian.MustNew(net, "client", integOpts())
	defer client.Close()

	s := client.Agent("a").Stream("server", guardian.DefaultGroup)
	// Step 1 of §3: encoding fails => the call fails, no promise created.
	p, err := promise.Call(s, "describe", promise.String, gradeRecord{Student: "x"})
	if p != nil || !exception.IsFailure(err) {
		t.Fatalf("Call = %v, %v", p, err)
	}
}

func TestIntegrationGuardianCrashDuringComposition(t *testing.T) {
	// The grades DB crashes mid-composition; the coenter terminates,
	// recovery brings it back, and a rerun completes. Runs on a virtual
	// clock so the modeled DB delay and the crash timing elapse instantly;
	// the auto-advance defer is registered first so (LIFO) the clock keeps
	// moving until the guardians have closed.
	vclk := clock.NewVirtual()
	vclk.SetAutoAdvance(true)
	defer vclk.SetAutoAdvance(false)
	net := simnet.New(simnet.Config{Clock: vclk})
	defer net.Close()
	db, err := grades.NewDB(net, "gradesdb", integOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.G.Close()
	pr, err := grades.NewPrinter(net, "printer", integOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pr.G.Close()
	client, err := grades.NewClient(net, "client", integOpts(), db.Ref(), pr.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer client.G.Close()

	// Crash the DB while calls are in flight.
	db.SetDelay(2 * time.Millisecond)
	load := grades.Workload(30)
	crashed := make(chan struct{})
	go func() {
		vclk.Sleep(5 * time.Millisecond)
		db.G.Crash()
		close(crashed)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.RunCoenter(ctx, load); err == nil {
		t.Fatal("composition should fail when the DB crashes")
	}
	if ctx.Err() != nil {
		t.Fatal("composition hung through the crash")
	}
	<-crashed

	// Recover and run again cleanly.
	db.G.Recover()
	db.Reset()
	db.SetDelay(0)
	pr.Reset()
	if err := client.RunCoenter(ctx, load); err != nil {
		t.Fatalf("rerun after recovery: %v", err)
	}
	if got := len(pr.Lines()); got != len(load) {
		t.Fatalf("printed %d lines after recovery", got)
	}
}

func TestIntegrationGradesOverLossyNetwork(t *testing.T) {
	// Full application over a 10%-loss network: slower, but the output is
	// exactly right (exactly-once ordered delivery).
	net := simnet.New(simnet.Config{LossRate: 0.1, Jitter: 200 * time.Microsecond, Seed: 7})
	defer net.Close()
	opts := integOpts()
	opts.RTO = 5 * time.Millisecond
	opts.MaxRetries = 40

	db, err := grades.NewDB(net, "gradesdb", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.G.Close()
	pr, err := grades.NewPrinter(net, "printer", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.G.Close()
	client, err := grades.NewClient(net, "client", opts, db.Ref(), pr.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer client.G.Close()

	load := grades.Workload(50)
	if err := client.RunCoenter(context.Background(), load); err != nil {
		t.Fatal(err)
	}
	lines := pr.Lines()
	if len(lines) != len(load) {
		t.Fatalf("printed %d lines, want %d", len(lines), len(load))
	}
	for i, s := range load {
		if db.Count(s.Student) != 1 {
			t.Fatalf("student %s recorded %d times", s.Student, db.Count(s.Student))
		}
		want := fmt.Sprintf("%s %.2f", s.Student, s.Grade)
		if lines[i] != want {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want)
		}
	}
}

func TestIntegrationTypedPortsAcrossGuardians(t *testing.T) {
	// A typed port's contract enforced across the full stack, with a
	// declared exception claimed through a promise.
	net := simnet.New(simnet.Config{})
	defer net.Close()
	server := guardian.MustNew(net, "server", integOpts())
	defer server.Close()
	client := guardian.MustNew(net, "client", integOpts())
	defer client.Close()

	sig := handlertype.MustParse("port (string) returns (real) signals (no_such_student(string))")
	boxes := map[string]float64{"ann": 91.5}
	ref := server.AddTypedHandler("average", sig, func(call *guardian.Call) ([]any, error) {
		stu, err := call.StringArg(0)
		if err != nil {
			return nil, err
		}
		avg, ok := boxes[stu]
		if !ok {
			return nil, exception.New("no_such_student", stu)
		}
		return []any{avg}, nil
	})

	s := ref.Stream(client.Agent("a"))
	p1, err := promise.CallTyped(s, ref.Port, sig, promise.Float, "ann")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := promise.CallTyped(s, ref.Port, sig, promise.Float, "zoe")
	if err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if v, err := p1.MustClaim(); err != nil || v != 91.5 {
		t.Fatalf("ann = %v, %v", v, err)
	}
	_, err = p2.MustClaim()
	if !exception.Is(err, "no_such_student") {
		t.Fatalf("zoe err = %v", err)
	}
}

func TestIntegrationComposeOverLossyStreams(t *testing.T) {
	net := simnet.New(simnet.Config{LossRate: 0.08, Seed: 3})
	defer net.Close()
	opts := integOpts()
	opts.RTO = 5 * time.Millisecond
	opts.MaxRetries = 40

	server := guardian.MustNew(net, "server", opts)
	defer server.Close()
	inc := server.AddHandler("inc", func(call *guardian.Call) ([]any, error) {
		x, err := call.IntArg(0)
		if err != nil {
			return nil, err
		}
		return []any{x + 1}, nil
	})
	client := guardian.MustNew(net, "client", opts)
	defer client.Close()
	s := inc.Stream(client.Agent("flow"))

	const k = 40
	flow := compose.Via(
		compose.Produce(k, func(i int) (int64, error) { return int64(i), nil }),
		func(x int64) (*promise.Promise[int64], error) {
			return promise.Call(s, inc.Port, promise.Int, x)
		})
	got, err := compose.Collect(context.Background(), flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestIntegrationDynamicGroupFanOutFanIn(t *testing.T) {
	// A dynamic coenter group fans out one forked-claim process per call
	// and fans results into a queue — the §4.3 process-per-item shape over
	// a real guardian.
	net := simnet.New(simnet.Config{Jitter: 100 * time.Microsecond, Seed: 5})
	defer net.Close()
	server := guardian.MustNew(net, "server", integOpts())
	defer server.Close()
	sq := server.AddHandler("square", func(call *guardian.Call) ([]any, error) {
		x, err := call.IntArg(0)
		if err != nil {
			return nil, err
		}
		return []any{x * x}, nil
	})
	client := guardian.MustNew(net, "client", integOpts())
	defer client.Close()
	s := sq.Stream(client.Agent("fan"))

	const n = 25
	results := pqueue.New[int64](0)
	g := coenter.NewGroup(context.Background())
	for i := 0; i < n; i++ {
		i := i
		g.Spawn(func(p *coenter.Proc) error {
			pr, err := promise.Call(s, sq.Port, promise.Int, int64(i))
			if err != nil {
				return err
			}
			v, err := pr.Claim(p.Context())
			if err != nil {
				return err
			}
			return results.Enq(p.Context(), v)
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	results.Close()
	var sum int64
	var count int
	for {
		v, err := results.Deq(context.Background())
		if err != nil {
			break
		}
		sum += v
		count++
	}
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i * i)
	}
	if count != n || sum != want {
		t.Fatalf("collected %d results, sum %d (want %d)", count, sum, want)
	}
}

func TestIntegrationManyClientsOneGuardian(t *testing.T) {
	// 8 client activities hammer one guardian concurrently; per-stream
	// ordering holds for each while the streams interleave.
	net := simnet.New(simnet.Config{Jitter: 150 * time.Microsecond, Seed: 11})
	defer net.Close()
	server := guardian.MustNew(net, "server", integOpts())
	defer server.Close()

	var mu sync.Mutex
	lastSeen := make(map[string]int64)
	violations := 0
	server.AddHandler("ordered", func(call *guardian.Call) ([]any, error) {
		x, err := call.IntArg(0)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		if x != lastSeen[call.Agent]+1 {
			violations++
		}
		lastSeen[call.Agent] = x
		mu.Unlock()
		return []any{x}, nil
	})

	client := guardian.MustNew(net, "client", integOpts())
	defer client.Close()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			agent := client.Agent(fmt.Sprintf("activity-%d", c))
			s := agent.Stream("server", guardian.DefaultGroup)
			for i := 1; i <= 30; i++ {
				if _, err := promise.Call(s, "ordered", promise.Int, int64(i)); err != nil {
					t.Errorf("client %d call %d: %v", c, i, err)
					return
				}
			}
			if err := s.Synch(context.Background()); err != nil {
				t.Errorf("client %d synch: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if violations != 0 {
		t.Fatalf("%d per-stream ordering violations", violations)
	}
	if len(lastSeen) != 8 {
		t.Fatalf("saw %d agents", len(lastSeen))
	}
	for agent, last := range lastSeen {
		if last != 30 {
			t.Fatalf("agent %s finished at %d", agent, last)
		}
	}
}
